#include "src/comm/transfer_engine.h"

#include <algorithm>
#include <utility>

#include "src/check/mutation.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace comm {

TransferEngine::TransferEngine(device::RdmaDevice* device, const TransferEngineOptions& options)
    : device_(device), options_(options) {
  CHECK(device_ != nullptr);
}

TransferEngine::~TransferEngine() {
  // Cached registrations would otherwise outlive the mechanism and surface as
  // RdmaCheck teardown leaks (rkeys naming memory about to be freed).
  mr_cache_.ForEach(
      [this](const auto& entry) { (void)device_->nic()->DeregisterMemory(entry.value.mr); });
  mr_cache_.Clear();
}

int TransferEngine::LaneCount() const {
  const int device_lanes = device_->num_qps_per_peer();
  if (options_.stripe_lanes <= 0) return device_lanes;
  return std::min(options_.stripe_lanes, device_lanes);
}

int TransferEngine::LaneCountFor(const Endpoint& remote) const {
  int lanes = LaneCount();
  if (lane_limit_resolver_) {
    const int cap = lane_limit_resolver_(remote);
    if (cap > 0) lanes = std::min(lanes, cap);
  }
  return std::max(lanes, 1);
}

StatusOr<device::RdmaChannel*> TransferEngine::Channel(const Endpoint& remote, int lane) {
  const uint64_t pool_gen = device_->qp_pool()->generation();
  if (pool_gen != pool_generation_) {
    channel_cache_.clear();
    pool_generation_ = pool_gen;
  }
  const std::pair<Endpoint, int> key(remote, lane);
  auto it = channel_cache_.find(key);
  if (it != channel_cache_.end()) return it->second;
  RDMADL_ASSIGN_OR_RETURN(device::RdmaChannel * channel, device_->GetChannel(remote, lane));
  channel_cache_[key] = channel;
  return channel;
}

void TransferEngine::FailAsync(device::MemcpyCallback on_done, Status status) {
  if (!on_done) return;
  device_->simulator()->ScheduleAfter(
      0, [cb = std::move(on_done), s = std::move(status)]() { cb(s); });
}

TransferEngine::Route TransferEngine::WriteWithFlag(const Endpoint& remote,
                                                    const WriteDesc& payload,
                                                    const WriteDesc& flag_desc, int lane_hint,
                                                    device::MemcpyCallback on_done) {
  WriteDesc flag = flag_desc;
  if (payload.bytes > 0 && flag.bytes > 0 &&
      check::MutationEnabled(check::kSkipFlagWrite)) {
    // Seeded bug (explorer self-validation): the sender "forgets" the flag
    // write. The payload lands, the completion fires, and the receiver polls
    // a flag byte nobody will ever set — the stall detector's target.
    flag.bytes = 0;
  }
  if (payload.bytes == 0) {
    return PostDirect(remote, payload, flag, lane_hint, std::move(on_done));
  }
  // Striping parallelizes the per-QP WQE-engine work. With the engine ceiling
  // disabled (rate 0 = infinite) there is nothing to parallelize: the stripes
  // would only fair-share the wire with unrelated transfers and delay this
  // write's own flag, so the route is also gated on a finite engine rate.
  if (options_.enable_striping && LaneCountFor(remote) > 1 &&
      payload.bytes >= options_.stripe_threshold_bytes &&
      device_->nic()->cost().rdma_qp_engine_bytes_per_sec > 0) {
    PostStriped(remote, payload, flag, lane_hint, std::move(on_done));
    return Route::kStriped;
  }
  if (options_.enable_coalescing && payload.bytes <= options_.coalesce_threshold_bytes) {
    PeerQueue& queue = queues_[remote];
    queue.pending.push_back(PendingWrite{payload, flag, std::move(on_done)});
    ++stats_.coalesced_writes;
    if (static_cast<int>(queue.pending.size()) >= options_.max_coalesce_batch) {
      Flush(remote, &queue);
    } else if (!queue.flush_scheduled) {
      queue.flush_scheduled = true;
      const uint64_t gen = generation_;
      const Endpoint rem = remote;
      device_->simulator()->ScheduleAfter(options_.coalesce_window_ns, [this, rem, gen]() {
        if (gen != generation_) return;
        auto it = queues_.find(rem);
        if (it == queues_.end()) return;
        it->second.flush_scheduled = false;
        Flush(rem, &it->second);
      });
    }
    return Route::kCoalesced;
  }
  return PostDirect(remote, payload, flag, lane_hint, std::move(on_done));
}

TransferEngine::Route TransferEngine::PostDirect(const Endpoint& remote,
                                                 const WriteDesc& payload,
                                                 const WriteDesc& flag, int lane_hint,
                                                 device::MemcpyCallback on_done) {
  auto channel_or = Channel(remote, lane_hint % std::max(1, device_->num_qps_per_peer()));
  if (!channel_or.ok()) {
    FailAsync(std::move(on_done), channel_or.status());
    return Route::kDirect;
  }
  device::RdmaChannel* channel = *channel_or;
  ++stats_.direct_writes;
  if (payload.bytes == 0) {
    channel->Memcpy(flag.local_addr, flag.lkey, flag.remote_addr, flag.rkey, flag.bytes,
                    device::Direction::kLocalToRemote, std::move(on_done), flag.copy_bytes);
    return Route::kDirect;
  }
  if (flag.bytes == 0) {
    // Payload only (flagless write, or the flag was mutated away): the
    // payload completion is the one the caller sees.
    channel->Memcpy(payload.local_addr, payload.lkey, payload.remote_addr, payload.rkey,
                    payload.bytes, device::Direction::kLocalToRemote, std::move(on_done),
                    payload.copy_bytes);
    return Route::kDirect;
  }
  // Same-QP FIFO + ascending-address delivery orders the flag behind the
  // payload (§3.2). The payload callback fires only on error; the flag
  // callback is the one completion the caller sees.
  auto state = std::make_shared<device::MemcpyCallback>(std::move(on_done));
  channel->Memcpy(
      payload.local_addr, payload.lkey, payload.remote_addr, payload.rkey, payload.bytes,
      device::Direction::kLocalToRemote,
      [state](const Status& status) {
        if (!status.ok() && *state) {
          device::MemcpyCallback cb = std::move(*state);
          *state = nullptr;
          cb(status);
        }
      },
      payload.copy_bytes);
  channel->Memcpy(
      flag.local_addr, flag.lkey, flag.remote_addr, flag.rkey, flag.bytes,
      device::Direction::kLocalToRemote,
      [state](const Status& status) {
        if (*state) {
          device::MemcpyCallback cb = std::move(*state);
          *state = nullptr;
          cb(status);
        }
      },
      flag.copy_bytes);
  return Route::kDirect;
}

void TransferEngine::PostStriped(const Endpoint& remote, const WriteDesc& payload,
                                 const WriteDesc& flag, int lane_hint,
                                 device::MemcpyCallback on_done) {
  const int lanes = LaneCountFor(remote);
  // MTU-aligned contiguous stripes: each lane gets one disjoint range, so no
  // two in-flight writes overlap (clean under the remote-race detector).
  const uint64_t mtu = std::max<uint64_t>(1, device_->cost().rdma_mtu_bytes);
  uint64_t per = (payload.bytes + lanes - 1) / lanes;
  per = (per + mtu - 1) / mtu * mtu;
  const int num_stripes = static_cast<int>((payload.bytes + per - 1) / per);

  // Resolve every channel before posting anything, so a connection failure
  // fails the write whole instead of half-posted.
  std::vector<device::RdmaChannel*> channels;
  channels.reserve(num_stripes);
  for (int i = 0; i < num_stripes; ++i) {
    auto channel_or = Channel(remote, i % lanes);
    if (!channel_or.ok()) {
      FailAsync(std::move(on_done), channel_or.status());
      return;
    }
    channels.push_back(*channel_or);
  }
  auto flag_channel_or = Channel(remote, lane_hint % lanes);
  if (!flag_channel_or.ok()) {
    FailAsync(std::move(on_done), flag_channel_or.status());
    return;
  }

  ++stats_.striped_writes;
  stats_.stripe_lane_writes += num_stripes;

  struct Join {
    int pending = 0;
    bool failed = false;
    bool flag_posted = false;  // Set by the kFlagBeforeLastStripe mutation.
    device::MemcpyCallback on_done;
    device::RdmaChannel* flag_channel = nullptr;
    WriteDesc flag;
  };
  auto join = std::make_shared<Join>();
  join->pending = num_stripes;
  join->on_done = std::move(on_done);
  join->flag_channel = *flag_channel_or;
  join->flag = flag;

  uint64_t offset = 0;
  for (int i = 0; i < num_stripes; ++i) {
    const uint64_t len = std::min(per, payload.bytes - offset);
    channels[i]->Memcpy(
        static_cast<uint8_t*>(payload.local_addr) + offset, payload.lkey,
        payload.remote_addr + offset, payload.rkey, len, device::Direction::kLocalToRemote,
        [join](const Status& status) {
          if (!status.ok() && !join->failed) {
            // First stripe error fails the write; later completions only
            // drain the join.
            join->failed = true;
            if (join->on_done) {
              device::MemcpyCallback cb = std::move(join->on_done);
              join->on_done = nullptr;
              cb(status);
            }
          }
          if (check::MutationEnabled(check::kFlagBeforeLastStripe) && !join->failed &&
              !join->flag_posted && join->flag.bytes > 0) {
            // Seeded bug (explorer self-validation): the flag is posted on
            // the FIRST stripe completion — sibling stripes are still in
            // flight, so a receiver that trusts the flag reads a torn
            // payload.
            join->flag_posted = true;
            join->flag_channel->Memcpy(join->flag.local_addr, join->flag.lkey,
                                       join->flag.remote_addr, join->flag.rkey,
                                       join->flag.bytes, device::Direction::kLocalToRemote,
                                       [](const Status&) {}, join->flag.copy_bytes);
          }
          if (--join->pending > 0 || join->failed) return;
          // Every stripe's completion has been observed: all payload bytes
          // are at the target, so the flag — on any lane — cannot overtake
          // them (the checker's completion-ordering happens-before edge).
          if (join->flag.bytes == 0 || join->flag_posted) {
            if (join->on_done) {
              device::MemcpyCallback cb = std::move(join->on_done);
              join->on_done = nullptr;
              cb(OkStatus());
            }
            return;
          }
          join->flag_channel->Memcpy(join->flag.local_addr, join->flag.lkey,
                                     join->flag.remote_addr, join->flag.rkey, join->flag.bytes,
                                     device::Direction::kLocalToRemote,
                                     std::move(join->on_done), join->flag.copy_bytes);
          join->on_done = nullptr;
        },
        payload.copy_bytes);
    offset += len;
  }
}

void TransferEngine::Flush(const Endpoint& remote, PeerQueue* queue) {
  if (queue->pending.empty()) return;
  std::vector<PendingWrite> items = std::move(queue->pending);
  queue->pending.clear();

  auto channel_or = Channel(remote, next_batch_lane_);
  next_batch_lane_ = (next_batch_lane_ + 1) % std::max(1, device_->num_qps_per_peer());
  if (!channel_or.ok()) {
    for (PendingWrite& item : items) FailAsync(std::move(item.on_done), channel_or.status());
    return;
  }
  ++stats_.coalesced_batches;

  // One doorbell-chained batch, interleaved [payload, flag, payload, flag,
  // ...]: the chain executes in posting order on one QP, so each flag lands
  // after its own payload — §3.2 holds per tensor inside the batch.
  std::vector<device::RdmaChannel::BatchWrite> ops;
  ops.reserve(items.size() * 2);
  for (PendingWrite& item : items) {
    auto state = std::make_shared<device::MemcpyCallback>(std::move(item.on_done));
    device::RdmaChannel::BatchWrite payload_op;
    payload_op.local_addr = item.payload.local_addr;
    payload_op.lkey = item.payload.lkey;
    payload_op.remote_addr = item.payload.remote_addr;
    payload_op.rkey = item.payload.rkey;
    payload_op.size = item.payload.bytes;
    payload_op.copy_bytes = item.payload.copy_bytes;
    if (item.flag.bytes == 0) {
      // Flagless entry (the flag was mutated away): the payload completion
      // is the one the caller sees.
      payload_op.callback = [state](const Status& status) {
        if (*state) {
          device::MemcpyCallback cb = std::move(*state);
          *state = nullptr;
          cb(status);
        }
      };
      ops.push_back(std::move(payload_op));
      continue;
    }
    payload_op.callback = [state](const Status& status) {
      if (!status.ok() && *state) {
        device::MemcpyCallback cb = std::move(*state);
        *state = nullptr;
        cb(status);
      }
    };
    device::RdmaChannel::BatchWrite flag_op;
    flag_op.local_addr = item.flag.local_addr;
    flag_op.lkey = item.flag.lkey;
    flag_op.remote_addr = item.flag.remote_addr;
    flag_op.rkey = item.flag.rkey;
    flag_op.size = item.flag.bytes;
    flag_op.copy_bytes = item.flag.copy_bytes;
    flag_op.callback = [state](const Status& status) {
      if (*state) {
        device::MemcpyCallback cb = std::move(*state);
        *state = nullptr;
        cb(status);
      }
    };
    ops.push_back(std::move(payload_op));
    ops.push_back(std::move(flag_op));
  }
  (*channel_or)->MemcpyBatch(std::move(ops));
}

void TransferEngine::FlushCoalesced() {
  for (auto& [remote, queue] : queues_) {
    Flush(remote, &queue);
  }
}

void TransferEngine::ResetTransientState() {
  // Invalidate scheduled flushes and drop queued writes without invoking
  // their callbacks (the owning step has been aborted; this mirrors
  // RdmaDevice::DropPendingCallbacks).
  ++generation_;
  for (auto& [remote, queue] : queues_) {
    queue.pending.clear();
    queue.flush_scheduled = false;
  }
  // Recovery may tear down or reconnect lanes out from under us; re-resolve
  // every binding through the pool on the next write.
  channel_cache_.clear();
}

void TransferEngine::BeginEpoch(int64_t epoch) { epoch_ = epoch; }

StatusOr<TransferEngine::MrHandle> TransferEngine::GetOrRegisterMr(const void* addr,
                                                                   uint64_t bytes) {
  if (addr == nullptr || bytes == 0) {
    return InvalidArgument("cannot cache-register an empty range");
  }
  const uint64_t a = reinterpret_cast<uint64_t>(addr);
  if (auto* entry = mr_cache_.Lookup(a, bytes)) {
    entry->value.epoch = epoch_;  // Pin against eviction this epoch.
    ++stats_.mr_cache_hits;
    MrHandle handle;
    handle.lkey = entry->value.mr.lkey;
    handle.rkey = entry->value.mr.rkey;
    handle.hit = true;
    return handle;
  }
  ++stats_.mr_cache_misses;

  // Page-aligned extent, like a real registration cache: reuse across steps
  // only works if the cached extent covers re-allocations of the same buffer.
  const uint64_t page = std::max<uint64_t>(1, device_->cost().mr_page_bytes);
  const uint64_t base = a / page * page;
  const uint64_t end = (a + bytes + page - 1) / page * page;

  int evictions = 0;
  auto evict_one = [this, &evictions]() {
    // Entries touched this epoch may be the target of an in-flight remote
    // read (§3.3 receiver side); only earlier epochs are evictable.
    auto victim = mr_cache_.EvictLru(
        [this](const tensor::ExtentLruCache<CachedMr>::Entry& e) {
          return e.value.epoch < epoch_;
        });
    if (!victim.has_value()) return false;
    (void)device_->nic()->DeregisterMemory(victim->value.mr);
    ++evictions;
    ++stats_.mr_cache_evictions;
    return true;
  };
  while (static_cast<int>(mr_cache_.size()) >= std::max(1, options_.mr_cache_capacity)) {
    if (!evict_one()) break;
  }
  auto mr_or = device_->nic()->RegisterMemory(reinterpret_cast<void*>(base), end - base);
  while (!mr_or.ok() && mr_or.status().code() == StatusCode::kResourceExhausted) {
    // NIC MR limit: shed LRU cached extents until the registration fits or
    // nothing evictable remains.
    if (!evict_one()) break;
    mr_or = device_->nic()->RegisterMemory(reinterpret_cast<void*>(base), end - base);
  }
  if (!mr_or.ok()) return mr_or.status();
  mr_cache_.Insert(base, end - base, CachedMr{*mr_or, epoch_});
  MrHandle handle;
  handle.lkey = mr_or->lkey;
  handle.rkey = mr_or->rkey;
  handle.register_ns = device_->nic()->RegistrationCost(end - base);
  handle.evictions = evictions;
  return handle;
}

}  // namespace comm
}  // namespace rdmadl
