// RPC-based tensor transfer baselines (§2.2): the gRPC-over-TCP and
// gRPC-over-RDMA mechanisms the paper compares against.
//
// Modelled per the paper's description of RPC overheads:
//   * every message is serialized at the sender and deserialized at the
//     receiver (proto-style, at CostModel::serialize_bytes_per_sec);
//   * each channel owns a fixed in-library ring buffer; messages larger than
//     it are fragmented at the sender (extra copy) and re-assembled at the
//     receiver (copy from the ring into the user buffer) — §2.2's
//     "additional data copy ... proportional to the message size";
//   * a fixed per-call dispatch overhead applies on both endpoints;
//   * gRPC-over-RDMA uses verbs transport speeds but keeps all of the above
//     (TF r1.2 wrapped RDMA *under* the gRPC abstraction), and reproduces the
//     documented TF crash on messages above 1 GB as a structured error.
#ifndef RDMADL_SRC_COMM_RPC_MECHANISM_H_
#define RDMADL_SRC_COMM_RPC_MECHANISM_H_

#include <cstring>
#include <map>
#include <unordered_map>
#include <memory>
#include <vector>

#include "src/runtime/session.h"
#include "src/runtime/transfer.h"

namespace rdmadl {
namespace comm {

struct RpcStats {
  int64_t messages = 0;
  int64_t fragments = 0;
  uint64_t bytes = 0;
  uint64_t copied_bytes = 0;  // Ring-buffer + reassembly copies.
};

class RpcMechanism : public runtime::TransferMechanism {
 public:
  // |plane| selects the transport: kTcp -> gRPC.TCP, kRdma -> gRPC.RDMA.
  RpcMechanism(runtime::Cluster* cluster, net::Plane plane);

  std::string name() const override {
    return plane_ == net::Plane::kTcp ? "gRPC.TCP" : "gRPC.RDMA";
  }
  RecvMode recv_mode() const override { return RecvMode::kAsync; }

  void Setup(const std::vector<graph::TransferEdge>& edges,
             std::function<void(Status)> done) override;
  void BeginStep(int64_t step) override;

  int64_t Send(const graph::TransferEdge& edge, const tensor::Tensor& tensor,
               std::function<void(Status)> on_sent) override;
  void RecvAsync(const graph::TransferEdge& edge,
                 std::function<void(const Status&, tensor::Tensor)> done) override;

  const RpcStats& stats() const { return stats_; }

 private:
  struct Mailbox {
    bool has_tensor = false;
    tensor::Tensor tensor;
    // Transport failure parked here until the receiver asks (fault injection:
    // a dropped RPC fragment fails the whole message).
    Status error;
    std::function<void(const Status&, tensor::Tensor)> waiter;
  };

  void Deliver(const graph::TransferEdge& edge, tensor::Tensor tensor);
  void FailDeliver(const graph::TransferEdge& edge, const Status& status);

  runtime::Cluster* cluster_;
  net::Plane plane_;
  RpcStats stats_;
  std::unordered_map<std::string, Mailbox> mailboxes_;  // By edge key.
};

}  // namespace comm
}  // namespace rdmadl

#endif  // RDMADL_SRC_COMM_RPC_MECHANISM_H_
