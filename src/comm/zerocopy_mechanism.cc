#include "src/comm/zerocopy_mechanism.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/check/mutation.h"
#include "src/check/rdma_check.h"
#include "src/net/fabric.h"
#include "src/sim/trace.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace comm {

using device::Direction;
using device::RemoteRegion;
using runtime::HostRuntime;
using runtime::RdmaArena;
using tensor::Tensor;

namespace {

// Metadata block layout (§3.3): sizes are fixed because the tensor rank is
// fixed across mini-batches even when dimensions vary.
//   [u32 dtype][u32 ndims][i64 dims[rank]][u64 src_addr][u32 src_rkey]
//   [u64 payload_bytes][u8 flag]
size_t MetadataBytes(int rank) { return 4 + 4 + 8 * rank + 8 + 4 + 8 + 1; }

int64_t CostNs(uint64_t bytes, double bytes_per_sec) {
  return static_cast<int64_t>(static_cast<double>(bytes) / bytes_per_sec * 1e9);
}

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

struct ZeroCopyRdmaMechanism::EdgeState {
  graph::TransferEdge edge;
  Protocol protocol = Protocol::kStatic;
  HostRuntime* src = nullptr;
  HostRuntime* dst = nullptr;
  device::RdmaChannel* channel = nullptr;       // src -> dst, carries writes.
  device::RdmaChannel* read_channel = nullptr;  // dst -> src, carries reads.
  int qp_index = 0;                             // Lane hint for the engine.

  // ---- Receiver state ----
  RecvPhase phase = RecvPhase::kWaiting;
  Tensor recv_tensor;            // Static: preallocated once; dynamic: per arrival.
  uint8_t* flag_ptr = nullptr;   // Always-real completion flag polled by RdmaRecv.
  uint8_t* meta_block = nullptr; // Dynamic: metadata block in dst's meta arena.
  size_t meta_bytes = 0;
  bool dst_gpu_staging = false;  // Static receive needs a PCIe H2D after the flag.

  // ---- Sender-side knowledge (filled by address distribution) ----
  RemoteRegion remote_data;
  RemoteRegion remote_flag;
  RemoteRegion remote_meta;
  uint8_t* src_meta_staging = nullptr;  // Sender-side metadata build buffer.
  uint32_t src_meta_lkey = 0;

  // Keeps sender buffers alive until the receiver's read has certainly
  // finished (released at the next step boundary).
  Tensor hold;
  std::vector<void*> staging_to_free_at_step;  // Freed on BeginStep (dynamic staging).

  // ---- Degradation ladder (survives ResetTransientState by design) ----
  EdgePath path = EdgePath::kZeroCopy;
  int consecutive_failures = 0;  // Zero-copy send failures in a row.
  int degraded_successes = 0;    // Clean degraded sends since demotion.
};

ZeroCopyRdmaMechanism::ZeroCopyRdmaMechanism(runtime::Cluster* cluster, ZeroCopyOptions options)
    : cluster_(cluster), options_(options) {}

ZeroCopyRdmaMechanism::~ZeroCopyRdmaMechanism() {
  // Return the per-edge arena carve-outs so a rebuilt mechanism (elastic
  // reconfiguration tears this one down and sets up a fresh one over the
  // surviving hosts) can re-carve receive buffers from the same registered
  // arenas. Stale "zc_addr" handlers are overwritten by the next Setup on
  // every host that still receives.
  for (auto& [key, s] : edges_) {
    if (s->flag_ptr != nullptr) {
      check::OnFlagForgotten(s->dst->endpoint().host_id, s->flag_ptr);
    }
    if (s->protocol == Protocol::kStatic) {
      if (s->remote_data.addr != 0) {
        StatusOr<RdmaArena*> arena = s->dst->rdma_arena();
        if (arena.ok()) {
          (*arena)->allocator->Deallocate(reinterpret_cast<void*>(s->remote_data.addr));
        }
      }
      if (!s->dst->real_memory() && s->flag_ptr != nullptr) {
        StatusOr<RdmaArena*> meta = s->dst->meta_arena();
        if (meta.ok()) (*meta)->allocator->Deallocate(s->flag_ptr);
      }
    } else {
      if (s->meta_block != nullptr) {
        StatusOr<RdmaArena*> meta = s->dst->meta_arena();
        if (meta.ok()) (*meta)->allocator->Deallocate(s->meta_block);
      }
      if (s->src_meta_staging != nullptr) {
        StatusOr<RdmaArena*> meta = s->src->meta_arena();
        if (meta.ok()) (*meta)->allocator->Deallocate(s->src_meta_staging);
      }
    }
    if (!s->staging_to_free_at_step.empty()) {
      StatusOr<RdmaArena*> arena = s->src->rdma_arena();
      if (arena.ok()) {
        for (void* ptr : s->staging_to_free_at_step) {
          (*arena)->allocator->Deallocate(ptr);
        }
      }
    }
  }
  // The per-host "flag = 1" source bytes are carved from the meta arenas too;
  // a rebuilt mechanism re-carves its own, so return them as well (leaving
  // them would leak one byte per host per rebuild — found by RdmaCheck).
  for (auto& [host, flag] : flag_sources_) {
    StatusOr<RdmaArena*> meta = host->meta_arena();
    if (meta.ok()) (*meta)->allocator->Deallocate(flag);
  }
}

void ZeroCopyRdmaMechanism::Setup(const std::vector<graph::TransferEdge>& edges,
                                  std::function<void(Status)> done) {
  // Pass 1: size the per-process RDMA arenas (§3.4: one large registration).
  std::map<HostRuntime*, uint64_t> need;
  for (const graph::TransferEdge& edge : edges) {
    HostRuntime* src = cluster_->host(edge.src_device);
    HostRuntime* dst = cluster_->host(edge.dst_device);
    if (edge.shape.IsFullyDefined()) {
      const uint64_t bytes =
          edge.shape.num_elements() * tensor::DTypeSize(edge.dtype);
      need[dst] += bytes + tensor::Allocator::kAlignment;
      need[src] += bytes + tensor::Allocator::kAlignment;  // Staging worst case.
    }
  }
  for (auto& [host, bytes] : need) {
    StatusOr<RdmaArena*> arena = host->EnsureRdmaArena(bytes);
    if (!arena.ok()) {
      cluster_->simulator()->ScheduleAfter(
          0, [done = std::move(done), s = arena.status()]() { done(s); });
      return;
    }
  }

  // Pass 2: receiver-side preallocation and RPC handler registration.
  Status setup_status = OkStatus();
  for (const graph::TransferEdge& edge : edges) {
    auto state = std::make_unique<EdgeState>();
    state->edge = edge;
    state->src = cluster_->host(edge.src_device);
    state->dst = cluster_->host(edge.dst_device);
    Status s = SetupEdge(state.get());
    if (!s.ok()) {
      setup_status = s;
      break;
    }
    if (options_.graph_analysis) {
      analysis(state->src).static_producers.insert(edge.producer);
    }
    edges_[edge.key] = std::move(state);
  }
  if (!setup_status.ok()) {
    cluster_->simulator()->ScheduleAfter(
        0, [done = std::move(done), setup_status]() { done(setup_status); });
    return;
  }

  // Every receiving device answers address queries for its edges.
  std::set<HostRuntime*> receivers;
  for (auto& [key, state] : edges_) receivers.insert(state->dst);
  for (HostRuntime* dst : receivers) {
    dst->rdma_device()->RegisterRpcHandler(
        "zc_addr", [this](const std::vector<uint8_t>& request) {
          const std::string key(request.begin(), request.end());
          std::vector<uint8_t> response;
          auto it = edges_.find(key);
          if (it == edges_.end()) return response;  // Empty => error at caller.
          EdgeState* s = it->second.get();
          response.push_back(s->protocol == Protocol::kStatic ? 0 : 1);
          s->remote_data.EncodeTo(&response);
          s->remote_flag.EncodeTo(&response);
          s->remote_meta.EncodeTo(&response);
          return response;
        });
  }

  // Pass 3: every sender fetches the remote addresses over the vanilla RPC
  // (§3.2: "its address ... is distributed to the server that holds the
  // remote upstream tensor before the computation").
  auto pending = std::make_shared<int>(static_cast<int>(edges_.size()));
  auto first_error = std::make_shared<Status>();
  auto done_shared = std::make_shared<std::function<void(Status)>>(std::move(done));
  if (*pending == 0) {
    cluster_->simulator()->ScheduleAfter(0, [done_shared]() { (*done_shared)(OkStatus()); });
    return;
  }
  for (auto& [key, state] : edges_) {
    EdgeState* s = state.get();
    std::vector<uint8_t> payload(key.begin(), key.end());
    s->src->rdma_device()->Call(
        s->dst->endpoint(), "zc_addr", std::move(payload),
        [s, pending, first_error, done_shared](const Status& status,
                                               const std::vector<uint8_t>& response) {
          if (!status.ok()) {
            if (first_error->ok()) *first_error = status;
          } else if (response.size() < 1 + 3 * RemoteRegion::kWireSize) {
            if (first_error->ok()) {
              *first_error = Internal("short zc_addr response for " + s->edge.key);
            }
          } else {
            // Decode and install; the decoded values must round-trip the wire.
            const uint8_t* p = response.data() + 1;
            s->remote_data = *RemoteRegion::Decode(p, RemoteRegion::kWireSize);
            p += RemoteRegion::kWireSize;
            s->remote_flag = *RemoteRegion::Decode(p, RemoteRegion::kWireSize);
            p += RemoteRegion::kWireSize;
            s->remote_meta = *RemoteRegion::Decode(p, RemoteRegion::kWireSize);
          }
          if (--*pending == 0) {
            (*done_shared)(*first_error);
          }
        });
  }
}

Status ZeroCopyRdmaMechanism::SetupEdge(EdgeState* s) {
  const graph::TransferEdge& edge = s->edge;
  const bool src_gdr = s->src->options().tensors_on_gpu && s->src->options().gpudirect;
  const bool dst_gdr = s->dst->options().tensors_on_gpu && s->dst->options().gpudirect;
  const bool shape_static = edge.shape.IsFullyDefined();
  // §3.5: GPUDirect edges always use the dynamic protocol (polling GPU memory
  // is impractical; metadata stays in host memory).
  if (shape_static && !options_.force_dynamic && !src_gdr && !dst_gdr) {
    s->protocol = Protocol::kStatic;
  } else {
    s->protocol = Protocol::kDynamic;
    if (!shape_static && edge.shape.num_dims() == 0) {
      return InvalidArgument(StrCat("edge ", edge.key, " has unknown rank"));
    }
  }

  RDMADL_ASSIGN_OR_RETURN(RdmaArena * dst_meta, s->dst->meta_arena());
  RDMADL_ASSIGN_OR_RETURN(RdmaArena * src_meta, s->src->meta_arena());

  if (s->protocol == Protocol::kStatic) {
    const uint64_t bytes = edge.shape.num_elements() * tensor::DTypeSize(edge.dtype);
    RDMADL_ASSIGN_OR_RETURN(RdmaArena * dst_arena, s->dst->rdma_arena());
    // +1: room for the tail completion flag (§3.2).
    uint8_t* buf = static_cast<uint8_t*>(dst_arena->allocator->Allocate(bytes + 1));
    if (buf == nullptr) {
      return ResourceExhausted(StrCat("receive arena exhausted on ", edge.dst_device));
    }
    auto buffer = std::make_shared<tensor::Buffer>(buf, bytes + 1);
    s->recv_tensor = Tensor(std::move(buffer), edge.dtype, edge.shape);
    s->remote_data = RemoteRegion{reinterpret_cast<uint64_t>(buf), dst_arena->rkey, bytes};
    if (s->dst->real_memory()) {
      // Paper layout: flag byte at the tail of the tensor memory region.
      s->flag_ptr = buf + bytes;
      s->remote_flag = RemoteRegion{reinterpret_cast<uint64_t>(s->flag_ptr),
                                    dst_arena->rkey, 1};
      *s->flag_ptr = 0;
    } else {
      // Virtual-memory mode: the data buffer is a fake address, so the flag
      // lives in the always-real metadata arena instead.
      s->flag_ptr = static_cast<uint8_t*>(dst_meta->allocator->Allocate(1));
      if (s->flag_ptr == nullptr) return ResourceExhausted("meta arena exhausted");
      s->remote_flag =
          RemoteRegion{reinterpret_cast<uint64_t>(s->flag_ptr), dst_meta->rkey, 1};
      *s->flag_ptr = 0;
    }
    s->dst_gpu_staging =
        s->dst->options().tensors_on_gpu && !s->dst->options().gpudirect;
  } else {
    s->meta_bytes = MetadataBytes(edge.shape.num_dims());
    s->meta_block = static_cast<uint8_t*>(dst_meta->allocator->Allocate(s->meta_bytes));
    if (s->meta_block == nullptr) return ResourceExhausted("meta arena exhausted");
    std::memset(s->meta_block, 0, s->meta_bytes);
    s->flag_ptr = s->meta_block + s->meta_bytes - 1;
    s->remote_meta = RemoteRegion{reinterpret_cast<uint64_t>(s->meta_block), dst_meta->rkey,
                                  s->meta_bytes};
    s->src_meta_staging =
        static_cast<uint8_t*>(src_meta->allocator->Allocate(s->meta_bytes));
    if (s->src_meta_staging == nullptr) return ResourceExhausted("meta arena exhausted");
    s->src_meta_lkey = src_meta->lkey;
  }

  // Declare the edge's completion flag to the protocol checker: TryRecv must
  // never trust it before a write covering the flag byte has landed. The
  // guard range is the payload the flag vouches for — trusting the flag also
  // asserts every guarded byte has landed (torn-read detection).
  check::OnFlagLocation(s->dst->endpoint().host_id, s->flag_ptr, edge.key);
  if (s->protocol == Protocol::kStatic) {
    check::OnFlagGuards(s->dst->endpoint().host_id, s->flag_ptr,
                        reinterpret_cast<const void*>(s->remote_data.addr),
                        s->remote_data.length);
  } else {
    check::OnFlagGuards(s->dst->endpoint().host_id, s->flag_ptr, s->meta_block,
                        s->meta_bytes - 1);
  }

  // Channels: spread edges across the configured QPs (§3.1 / Figure 4).
  const int qp_count = s->src->options().num_qps_per_peer;
  const int qp_idx = static_cast<int>(edges_.size()) % qp_count;
  s->qp_index = qp_idx;
  RDMADL_ASSIGN_OR_RETURN(s->channel,
                          s->src->rdma_device()->GetChannel(s->dst->endpoint(), qp_idx));
  RDMADL_ASSIGN_OR_RETURN(s->read_channel,
                          s->dst->rdma_device()->GetChannel(s->src->endpoint(), qp_idx));
  return OkStatus();
}

TransferEngine* ZeroCopyRdmaMechanism::engine_for(HostRuntime* src) {
  for (auto& [host, engine] : engines_) {
    if (host == src) return engine.get();
  }
  auto engine = std::make_unique<TransferEngine>(src->rdma_device(), options_.engine);
  engine->BeginEpoch(step_);
  TransferEngine* raw = engine.get();
  engines_.emplace_back(src, std::move(engine));
  return raw;
}

void ZeroCopyRdmaMechanism::BeginStep(int64_t step) {
  step_ = step;
  for (auto& [host, engine] : engines_) {
    engine->BeginEpoch(step);
  }
  const bool tracing = options_.graph_analysis && step == 0;
  for (auto& [host, a] : analysis_) {
    a.tracer.set_tracing(tracing);
  }
  if (options_.graph_analysis && step == 0) {
    // Tracers may not exist yet for hosts that have not executed a node;
    // they are created lazily with tracing enabled via this flag.
    tracing_step_ = true;
  } else {
    tracing_step_ = false;
  }
  for (auto& [key, state] : edges_) {
    state->hold = Tensor();
    if (!state->staging_to_free_at_step.empty()) {
      StatusOr<RdmaArena*> arena = state->src->rdma_arena();
      if (arena.ok()) {
        for (void* ptr : state->staging_to_free_at_step) {
          (*arena)->allocator->Deallocate(ptr);
        }
      }
      state->staging_to_free_at_step.clear();
    }
  }
}

void ZeroCopyRdmaMechanism::ResetTransientState() {
  // Queued-but-unposted coalesced writes belong to the aborted step; drop
  // them before rearming the edges (mirrors DropPendingCallbacks).
  for (auto& [host, engine] : engines_) {
    engine->ResetTransientState();
  }
  for (auto& [key, state] : edges_) {
    EdgeState* s = state.get();
    s->phase = RecvPhase::kWaiting;
    if (s->flag_ptr != nullptr) {
      *s->flag_ptr = 0;
      check::OnFlagCleared(s->dst->endpoint().host_id, s->flag_ptr);
    }
    if (s->meta_block != nullptr && s->meta_bytes > 0) {
      std::memset(s->meta_block, 0, s->meta_bytes);
    }
    if (s->protocol == Protocol::kDynamic) s->recv_tensor = Tensor();
    s->hold = Tensor();
  }
}

tensor::Allocator* ZeroCopyRdmaMechanism::AllocatorForNode(HostRuntime* host,
                                                           const graph::Node& node,
                                                           tensor::Allocator* default_alloc) {
  if (host->options().tensors_on_gpu) {
    StatusOr<RdmaArena*> gpu = host->gpu_arena();
    CHECK(gpu.ok()) << gpu.status();
    return (*gpu)->allocator.get();
  }
  if (!options_.graph_analysis) return default_alloc;
  DeviceAnalysis& a = analysis(host);
  if (a.static_producers.count(node.name()) > 0 || a.tracer.InHotSet(node.id())) {
    StatusOr<RdmaArena*> arena = host->rdma_arena();
    CHECK(arena.ok()) << arena.status();
    return (*arena)->allocator.get();
  }
  return default_alloc;
}

void ZeroCopyRdmaMechanism::OnNodeBegin(HostRuntime* host, const graph::Node& node) {
  DeviceAnalysis& a = analysis(host);
  if (tracing_step_) a.tracer.set_tracing(true);
  a.tracer.BeginNodeExecution(node.id());
}

void ZeroCopyRdmaMechanism::OnAllocation(HostRuntime* host, const graph::Node& node,
                                         const void* ptr, size_t bytes) {
  analysis(host).tracer.RecordAllocation(node.id(), ptr, bytes);
}

int64_t ZeroCopyRdmaMechanism::Send(const graph::TransferEdge& edge, const Tensor& tensor,
                                    std::function<void(Status)> on_sent) {
  auto it = edges_.find(edge.key);
  CHECK(it != edges_.end()) << "unknown edge " << edge.key;
  EdgeState* s = it->second.get();
  HostRuntime* src = s->src;
  sim::Simulator* simulator = src->simulator();
  const uint64_t bytes = tensor.TotalBytes();
  const void* ptr = tensor.raw_data();
  s->hold = tensor;

  // §3.4 dynamic analysis: learn the allocation site of every transferred
  // buffer so later iterations allocate it RDMA-accessible directly.
  if (options_.graph_analysis) {
    analysis(src).tracer.RecordTransfer(ptr);
  }

  // Degradation ladder gate: a demoted edge stays on the staged TCP path
  // until its probation window opens, at which point one send re-probes the
  // zero-copy path (falling through below).
  if (options_.enable_ladder && s->path == EdgePath::kDegraded) {
    if (s->degraded_successes >= options_.ladder_probation_after) {
      s->path = EdgePath::kProbation;
      ++stats_.probation_probes;
      sim::TraceInstant("ladder", StrCat(s->edge.key, " probation probe"),
                        simulator->Now());
    } else {
      return SendDegraded(s, tensor, std::move(on_sent));
    }
  }

  // Classify the source buffer.
  StatusOr<const RdmaArena*> registered = src->ArenaFor(ptr);
  const bool in_gpu = [&] {
    StatusOr<RdmaArena*> gpu = src->gpu_arena();
    return src->options().tensors_on_gpu && gpu.ok() && (*gpu)->Contains(ptr);
  }();

  if (registered.ok()) {
    // Zero-copy path: the buffer is already RDMA-accessible (host arena, or
    // GPU arena under GPUDirect).
    ++stats_.zero_copy_sends;
    if (options_.enable_ladder) on_sent = WrapLadder(s, std::move(on_sent));
    const void* send_ptr = ptr;
    const uint32_t lkey = (*registered)->lkey;
    simulator->ScheduleAfter(0, [this, s, send_ptr, lkey, bytes, tensor,
                                 on_sent = std::move(on_sent)]() mutable {
      if (s->protocol == Protocol::kStatic) {
        PostWrites(s, send_ptr, lkey, bytes, std::move(on_sent));
      } else {
        PostMetadataWrite(s, send_ptr, lkey, bytes, tensor, std::move(on_sent));
      }
    });
    return 0;
  }

  // MR registration cache (§3.4 registration pressure): instead of staging,
  // register the buffer's pages through the extent cache and send zero-copy
  // in place. Repeat sends of the same buffer hit the cache and skip the
  // pinning cost entirely.
  if (options_.use_mr_cache && !in_gpu) {
    TransferEngine* engine = engine_for(src);
    StatusOr<TransferEngine::MrHandle> cached = engine->GetOrRegisterMr(ptr, bytes);
    if (cached.ok()) {
      ++stats_.mr_cache_sends;
      if (cached->hit) {
        ++stats_.mr_cache_hits;
      } else {
        ++stats_.mr_cache_misses;
      }
      stats_.mr_cache_evictions += cached->evictions;
      ++stats_.zero_copy_sends;  // No staging copy: the pages serve in place.
      if (options_.enable_ladder) on_sent = WrapLadder(s, std::move(on_sent));
      const int64_t register_ns = cached->register_ns;
      const void* send_ptr = ptr;
      const uint32_t cached_lkey = cached->lkey;
      const uint32_t cached_rkey = cached->rkey;
      simulator->ScheduleAfter(
          register_ns, [this, s, send_ptr, cached_lkey, cached_rkey, bytes, tensor,
                        on_sent = std::move(on_sent)]() mutable {
            if (s->protocol == Protocol::kStatic) {
              PostWrites(s, send_ptr, cached_lkey, bytes, std::move(on_sent));
            } else {
              PostMetadataWrite(s, send_ptr, cached_lkey, bytes, tensor, std::move(on_sent),
                                cached_rkey);
            }
          });
      return register_ns;  // Page pinning runs on the issuing thread (§3.4).
    }
    // NIC/capacity exhaustion: fall through to the staging path.
  }

  // Staging path: allocate an RDMA-accessible buffer and copy into it.
  StatusOr<RdmaArena*> arena_or = src->rdma_arena();
  if (!arena_or.ok()) {
    // MR-registration exhaustion (or any arena failure): with the ladder on,
    // demote the edge and serve this very send over the staged TCP path
    // instead of failing the step.
    if (options_.enable_ladder) {
      LadderDemote(s, "rdma arena unavailable");
      return SendDegraded(s, tensor, std::move(on_sent));
    }
    simulator->ScheduleAfter(0, [on_sent = std::move(on_sent), st = arena_or.status()]() {
      on_sent(st);
    });
    return 0;
  }
  RdmaArena* arena = *arena_or;
  void* staging = arena->allocator->Allocate(bytes);
  if (staging == nullptr) {
    if (options_.enable_ladder) {
      LadderDemote(s, "sender RDMA arena exhausted");
      return SendDegraded(s, tensor, std::move(on_sent));
    }
    simulator->ScheduleAfter(0, [on_sent = std::move(on_sent)]() {
      on_sent(ResourceExhausted("sender RDMA arena exhausted"));
    });
    return 0;
  }
  const uint32_t lkey = arena->lkey;

  if (options_.enable_ladder) on_sent = WrapLadder(s, std::move(on_sent));
  auto post = [this, s, staging, lkey, bytes, tensor,
               on_sent = std::move(on_sent)]() mutable {
    if (s->protocol == Protocol::kStatic) {
      // Static staging can be freed as soon as the write completes.
      PostWrites(s, staging, lkey, bytes,
                 [this, s, staging, on_sent = std::move(on_sent)](Status status) {
                   StatusOr<RdmaArena*> arena = s->src->rdma_arena();
                   if (arena.ok()) (*arena)->allocator->Deallocate(staging);
                   on_sent(status);
                 });
    } else {
      // Dynamic staging must survive until the receiver's RDMA read, i.e.
      // until the step boundary.
      s->staging_to_free_at_step.push_back(staging);
      PostMetadataWrite(s, staging, lkey, bytes, tensor, std::move(on_sent));
    }
  };

  if (in_gpu) {
    // GPU tensor without GPUDirect: DMA it into host staging over PCIe. The
    // CPU is not held; the transfer occupies the PCIe link.
    ++stats_.pcie_copies;
    stats_.pcie_bytes += bytes;
    const net::CostModel& cost = src->cost();
    const int64_t pcie_ns =
        cost.pcie_latency_ns +
        static_cast<int64_t>(bytes / cost.pcie_bandwidth_bytes_per_sec * 1e9);
    net::Host* machine =
        src->rdma_device()->nic()->fabric()->host(src->endpoint().host_id);
    const int64_t pcie_end = machine->pcie().Reserve(simulator->Now(), pcie_ns);
    simulator->ScheduleAt(pcie_end, std::move(post));
    return 0;  // DMA copy; the executor worker is not held.
  }

  // Plain host-memory staging copy, on the RdmaSend op's own thread (this is
  // the copy the zero-copy analysis removes; with analysis off this is the
  // RDMA.cp baseline of Figure 8/12).
  ++stats_.staged_sends;
  stats_.staged_bytes += bytes;
  if (src->real_memory()) {
    std::memcpy(staging, ptr, bytes);
  }
  const net::CostModel& cost = src->cost();
  const int64_t copy_ns =
      cost.arena_alloc_overhead_ns +
      static_cast<int64_t>(bytes / cost.staging_memcpy_bytes_per_sec * 1e9);
  simulator->ScheduleAfter(copy_ns, std::move(post));
  return copy_ns;
}

void ZeroCopyRdmaMechanism::PostWrites(EdgeState* s, const void* src_ptr, uint32_t lkey,
                                       uint64_t bytes, std::function<void(Status)> on_sent) {
  // Payload then flag, routed through the transfer engine: small tensors may
  // share a doorbell batch with other edges to the same host, large ones are
  // striped across QP lanes, and everything else takes the classic two-WR
  // same-QP path. On every route the flag byte is the last to land — the
  // §3.2 guarantee.
  StatusOr<RdmaArena*> src_meta = s->src->meta_arena();
  CHECK(src_meta.ok());
  TransferEngine::WriteDesc payload;
  payload.local_addr = const_cast<void*>(src_ptr);
  payload.lkey = lkey;
  payload.remote_addr = s->remote_data.addr;
  payload.rkey = s->remote_data.rkey;
  payload.bytes = bytes;
  payload.copy_bytes = s->src->real_memory();
  TransferEngine::WriteDesc flag;
  flag.local_addr = FlagSource(s->src);
  flag.lkey = (*src_meta)->lkey;
  flag.remote_addr = s->remote_flag.addr;
  flag.rkey = s->remote_flag.rkey;
  flag.bytes = 1;
  flag.copy_bytes = true;
  const TransferEngine::Route route = engine_for(s->src)->WriteWithFlag(
      s->dst->endpoint(), payload, flag, s->qp_index,
      [cb = std::move(on_sent)](const Status& status) { cb(status); });
  if (route == TransferEngine::Route::kStriped) ++stats_.striped_sends;
  if (route == TransferEngine::Route::kCoalesced) ++stats_.coalesced_sends;
}

void ZeroCopyRdmaMechanism::PostMetadataWrite(EdgeState* s, const void* data_ptr, uint32_t lkey,
                                              uint64_t bytes, const Tensor& tensor,
                                              std::function<void(Status)> on_sent,
                                              uint32_t data_rkey) {
  // Serialize the (small, fixed-size) metadata: dims, dtype, and where the
  // receiver should read the payload from.
  uint8_t* m = s->src_meta_staging;
  const tensor::TensorShape& shape = tensor.shape();
  PutU32(m, static_cast<uint32_t>(tensor.dtype()));
  PutU32(m + 4, static_cast<uint32_t>(shape.num_dims()));
  for (int i = 0; i < shape.num_dims(); ++i) {
    PutU64(m + 8 + 8 * i, static_cast<uint64_t>(shape.dim(i)));
  }
  uint8_t* tail = m + 8 + 8 * shape.num_dims();
  PutU64(tail, reinterpret_cast<uint64_t>(data_ptr));
  if (data_rkey == 0) {
    StatusOr<const RdmaArena*> arena = s->src->ArenaFor(data_ptr);
    CHECK(arena.ok()) << arena.status();
    data_rkey = (*arena)->rkey;
  }
  PutU32(tail + 8, data_rkey);
  PutU64(tail + 12, bytes);
  m[s->meta_bytes - 1] = 1;  // Tail flag, last byte to land.

  // Routed through the engine as body + 1-byte tail flag: metadata blocks are
  // classic small-message traffic, so per-step dynamic-protocol edges to the
  // same host share one doorbell batch.
  TransferEngine::WriteDesc body;
  body.local_addr = m;
  body.lkey = s->src_meta_lkey;
  body.remote_addr = s->remote_meta.addr;
  body.rkey = s->remote_meta.rkey;
  body.bytes = s->meta_bytes - 1;
  body.copy_bytes = true;
  TransferEngine::WriteDesc flag;
  flag.local_addr = m + s->meta_bytes - 1;
  flag.lkey = s->src_meta_lkey;
  flag.remote_addr = s->remote_meta.addr + s->meta_bytes - 1;
  flag.rkey = s->remote_meta.rkey;
  flag.bytes = 1;
  flag.copy_bytes = true;
  const TransferEngine::Route route = engine_for(s->src)->WriteWithFlag(
      s->dst->endpoint(), body, flag, s->qp_index,
      [cb = std::move(on_sent)](const Status& status) { cb(status); });
  if (route == TransferEngine::Route::kCoalesced) ++stats_.coalesced_sends;
}

bool ZeroCopyRdmaMechanism::TryRecv(const graph::TransferEdge& edge, Tensor* out) {
  auto it = edges_.find(edge.key);
  CHECK(it != edges_.end()) << "unknown edge " << edge.key;
  EdgeState* s = it->second.get();
  switch (s->phase) {
    case RecvPhase::kWaiting: {
      if (*s->flag_ptr == 0) {
        check::OnFlagPolled(s->dst->endpoint().host_id, s->flag_ptr,
                            s->dst->simulator()->Now());
        // Seeded bug (explorer self-validation): act on the payload as if
        // the flag were already set.
        if (!check::MutationEnabled(check::kPrematureFlagTrust)) return false;
      }
      check::OnFlagTrusted(s->dst->endpoint().host_id, s->flag_ptr,
                           s->dst->simulator()->Now());
      *s->flag_ptr = 0;  // Clear for future use (§3.2).
      check::OnFlagCleared(s->dst->endpoint().host_id, s->flag_ptr);
      if (s->protocol == Protocol::kStatic) {
        if (!s->dst_gpu_staging) {
          ++stats_.static_transfers;
          *out = s->recv_tensor;
          return true;
        }
        // Stage the received tensor into GPU memory over PCIe.
        s->phase = RecvPhase::kStaging;
        ++stats_.pcie_copies;
        stats_.pcie_bytes += s->recv_tensor.TotalBytes();
        const net::CostModel& cost = s->dst->cost();
        const int64_t pcie_ns =
            cost.pcie_latency_ns +
            static_cast<int64_t>(s->recv_tensor.TotalBytes() /
                                 cost.pcie_bandwidth_bytes_per_sec * 1e9);
        net::Host* machine =
            s->dst->rdma_device()->nic()->fabric()->host(s->dst->endpoint().host_id);
        const int64_t end =
            machine->pcie().Reserve(s->dst->simulator()->Now(), pcie_ns);
        s->dst->simulator()->ScheduleAt(end, [s]() { s->phase = RecvPhase::kReady; });
        return false;
      }
      StartDynamicRead(s);
      return false;
    }
    case RecvPhase::kTransferring:
    case RecvPhase::kStaging:
      return false;
    case RecvPhase::kReady: {
      s->phase = RecvPhase::kWaiting;
      if (s->protocol == Protocol::kStatic) {
        ++stats_.static_transfers;
        *out = s->recv_tensor;
      } else {
        ++stats_.dynamic_transfers;
        *out = std::move(s->recv_tensor);
        s->recv_tensor = Tensor();
      }
      return true;
    }
  }
  return false;
}

void ZeroCopyRdmaMechanism::StartDynamicRead(EdgeState* s) {
  // Parse the metadata the sender just wrote (always real bytes).
  const uint8_t* m = s->meta_block;
  const auto dtype = static_cast<tensor::DType>(GetU32(m));
  const int rank = static_cast<int>(GetU32(m + 4));
  CHECK_EQ(rank, s->edge.shape.num_dims())
      << "tensor rank changed across mini-batches on edge " << s->edge.key;
  std::vector<int64_t> dims(rank);
  for (int i = 0; i < rank; ++i) dims[i] = static_cast<int64_t>(GetU64(m + 8 + 8 * i));
  const uint8_t* tail = m + 8 + 8 * rank;
  const uint64_t src_addr = GetU64(tail);
  const uint32_t src_rkey = GetU32(tail + 8);
  const uint64_t payload_bytes = GetU64(tail + 12);

  // Allocate the tensor storage in an RDMA-accessible region (§3.3), then
  // pull the payload with a one-sided read.
  const bool into_gpu = s->dst->options().tensors_on_gpu && s->dst->options().gpudirect;
  StatusOr<RdmaArena*> arena_or = into_gpu ? s->dst->gpu_arena() : s->dst->rdma_arena();
  CHECK(arena_or.ok()) << arena_or.status();
  RdmaArena* arena = *arena_or;
  tensor::TensorShape shape{std::move(dims)};
  Tensor t(arena->allocator.get(), dtype, shape);
  CHECK_EQ(t.TotalBytes(), payload_bytes) << "metadata/payload size mismatch";
  s->recv_tensor = t;
  s->phase = RecvPhase::kTransferring;
  s->read_channel->Memcpy(t.raw_data(), arena->lkey, src_addr, src_rkey, payload_bytes,
                          Direction::kRemoteToLocal,
                          [s](const Status& status) {
                            if (!status.ok()) {
                              // Transport failure: drop the half-read tensor
                              // and rearm the edge; the sender's retried step
                              // will rewrite the metadata block.
                              LOG(WARNING) << "dynamic RDMA read failed on edge "
                                           << s->edge.key << ": " << status;
                              s->recv_tensor = Tensor();
                              s->phase = RecvPhase::kWaiting;
                              return;
                            }
                            s->phase = RecvPhase::kReady;
                          },
                          /*copy_bytes=*/s->dst->real_memory());
}

// ---------------------------------------------------------------------------
// Degradation ladder (§3.3 fallback as a dynamic per-edge state machine).

int64_t ZeroCopyRdmaMechanism::SendDegraded(EdgeState* s, const Tensor& tensor,
                                            std::function<void(Status)> on_sent) {
  const uint64_t bytes = tensor.TotalBytes();
  ++stats_.degraded_sends;
  stats_.degraded_bytes += bytes;
  // gRPC-style staged transfer: dispatch + serialize on the sender, TCP
  // stream on the wire, deserialize + staging copy on the receiver — the same
  // cost structure as the RPC mechanism this path falls back to.
  const net::CostModel& cost = s->src->cost();
  const int64_t sender_ns =
      cost.rpc_dispatch_overhead_ns + CostNs(bytes, cost.serialize_bytes_per_sec);
  const int64_t receiver_ns = CostNs(bytes, cost.deserialize_bytes_per_sec) +
                              CostNs(bytes, cost.staging_memcpy_bytes_per_sec);
  sim::Simulator* simulator = s->src->simulator();
  auto on_sent_shared =
      std::make_shared<std::function<void(Status)>>(std::move(on_sent));
  cluster_->fabric()->Transfer(
      s->src->endpoint().host_id, s->dst->endpoint().host_id,
      std::max<uint64_t>(bytes, 1), net::Plane::kTcp, sender_ns, nullptr,
      [this, s, tensor, receiver_ns, simulator, on_sent_shared](Status status) {
        if (!status.ok()) {
          // The degraded path failed too (e.g. the peer crashed): the edge
          // stays demoted and its probation progress resets.
          s->degraded_successes = 0;
          (*on_sent_shared)(status.failed_edge().empty()
                                ? status.WithFailedEdge(s->edge.key)
                                : status);
          return;
        }
        ++s->degraded_successes;
        // Receiver-side completion surfaces through the same TryRecv states
        // as an RDMA arrival: static edges land in the preallocated tensor
        // and raise the flag; dynamic edges materialize the tensor directly.
        simulator->ScheduleAfter(receiver_ns, [s, simulator, tensor]() {
          if (s->protocol == Protocol::kStatic) {
            if (s->dst->real_memory()) {
              std::memcpy(s->recv_tensor.raw_data(), tensor.raw_data(),
                          tensor.TotalBytes());
            }
            *s->flag_ptr = 1;
            // Local set: the staged payload memcpy happened-before on this
            // same simulated thread — a legitimate HB edge for the checker.
            check::OnFlagSetLocally(s->dst->endpoint().host_id, s->flag_ptr,
                                    simulator->Now());
          } else {
            Tensor t(s->dst->default_allocator(), tensor.dtype(), tensor.shape());
            if (s->dst->real_memory()) {
              std::memcpy(t.raw_data(), tensor.raw_data(), tensor.TotalBytes());
            }
            s->recv_tensor = std::move(t);
            s->phase = RecvPhase::kReady;
          }
        });
        (*on_sent_shared)(OkStatus());
      });
  return sender_ns;
}

void ZeroCopyRdmaMechanism::LadderDemote(EdgeState* s, const char* why) {
  if (s->path == EdgePath::kDegraded) return;
  s->path = EdgePath::kDegraded;
  s->consecutive_failures = 0;
  s->degraded_successes = 0;
  ++stats_.ladder_demotions;
  sim::TraceInstant("ladder", StrCat(s->edge.key, " demoted to RPC staging: ", why),
                    s->src->simulator()->Now());
}

void ZeroCopyRdmaMechanism::LadderPromote(EdgeState* s) {
  s->path = EdgePath::kZeroCopy;
  s->consecutive_failures = 0;
  s->degraded_successes = 0;
  ++stats_.ladder_promotions;
  sim::TraceInstant("ladder", StrCat(s->edge.key, " promoted to zero-copy"),
                    s->src->simulator()->Now());
}

std::function<void(Status)> ZeroCopyRdmaMechanism::WrapLadder(
    EdgeState* s, std::function<void(Status)> on_sent) {
  return [this, s, on_sent = std::move(on_sent)](Status status) {
    if (status.ok()) {
      s->consecutive_failures = 0;
      if (s->path == EdgePath::kProbation) LadderPromote(s);
      on_sent(status);
      return;
    }
    ++s->consecutive_failures;
    if (s->path == EdgePath::kProbation) {
      // The link is still sick: back down; probation restarts from zero
      // clean degraded sends.
      s->path = EdgePath::kDegraded;
      s->degraded_successes = 0;
      sim::TraceInstant("ladder", StrCat(s->edge.key, " probation failed"),
                        s->src->simulator()->Now());
    } else if (s->consecutive_failures >= options_.ladder_demote_after) {
      LadderDemote(s, "zero-copy failure streak");
    }
    on_sent(status.failed_edge().empty() ? status.WithFailedEdge(s->edge.key)
                                         : status);
  };
}

EdgePath ZeroCopyRdmaMechanism::edge_path(const std::string& edge_key) const {
  auto it = edges_.find(edge_key);
  CHECK(it != edges_.end()) << "unknown edge " << edge_key;
  return it->second->path;
}

uint8_t* ZeroCopyRdmaMechanism::FlagSource(HostRuntime* host) {
  auto it = flag_sources_.find(host);
  if (it == flag_sources_.end()) {
    StatusOr<RdmaArena*> meta = host->meta_arena();
    CHECK(meta.ok()) << meta.status();
    auto* flag = static_cast<uint8_t*>((*meta)->allocator->Allocate(1));
    CHECK(flag != nullptr);
    *flag = 1;
    it = flag_sources_.emplace(host, flag).first;
  }
  return it->second;
}

}  // namespace comm
}  // namespace rdmadl
