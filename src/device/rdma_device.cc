#include "src/device/rdma_device.h"

#include <cstring>
#include <utility>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace device {

namespace {

// RPC wire frame:
//   [u8 type] [u64 call_id] [u16 method_len] [u32 payload_len] [method] [payload]
constexpr uint8_t kRpcRequest = 0;
constexpr uint8_t kRpcResponse = 1;
constexpr uint8_t kRpcError = 2;
constexpr size_t kRpcHeaderBytes = 1 + 8 + 2 + 4;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

// ---------------------------------------------------------------- RemoteRegion

void RemoteRegion::EncodeTo(std::vector<uint8_t>* out) const {
  PutU64(out, addr);
  PutU32(out, rkey);
  PutU64(out, length);
}

StatusOr<RemoteRegion> RemoteRegion::Decode(const uint8_t* data, size_t len) {
  if (len < kWireSize) {
    return InvalidArgument("RemoteRegion: short buffer");
  }
  RemoteRegion r;
  r.addr = GetU64(data);
  r.rkey = GetU32(data + 8);
  r.length = GetU64(data + 12);
  return r;
}

// ------------------------------------------------------------------- MemRegion

MemRegion::Impl::~Impl() {
  if (device != nullptr && mr.lkey != 0) {
    Status s = device->nic()->DeregisterMemory(mr);
    if (!s.ok()) {
      LOG(WARNING) << "DeregisterMemory failed: " << s;
    }
  }
}

RemoteRegion MemRegion::Remote() const {
  RemoteRegion r;
  if (impl_) {
    r.addr = reinterpret_cast<uint64_t>(impl_->data);
    r.rkey = impl_->mr.rkey;
    r.length = impl_->size;
  }
  return r;
}

StatusOr<RemoteRegion> MemRegion::RemoteSlice(uint64_t offset, uint64_t length) const {
  // Overflow-safe: offset + length could wrap for adversarial offsets.
  if (!impl_ || offset > impl_->size || length > impl_->size - offset) {
    return OutOfRange("RemoteSlice out of region bounds");
  }
  RemoteRegion r;
  r.addr = reinterpret_cast<uint64_t>(impl_->data) + offset;
  r.rkey = impl_->mr.rkey;
  r.length = length;
  return r;
}

// ------------------------------------------------------------- DeviceDirectory

RdmaDevice* DeviceDirectory::Find(const Endpoint& ep) const {
  auto it = devices_.find(ep);
  return it == devices_.end() ? nullptr : it->second;
}

// ----------------------------------------------------------------- RdmaChannel

void RdmaChannel::Memcpy(uint64_t local_addr, const MemRegion& local_region,
                         uint64_t remote_addr, const RemoteRegion& remote, uint64_t size,
                         Direction direction, MemcpyCallback callback) {
  Memcpy(reinterpret_cast<void*>(local_addr), local_region.lkey(), remote_addr, remote.rkey,
         size, direction, std::move(callback));
}

void RdmaChannel::Memcpy(void* local_addr, uint32_t lkey, uint64_t remote_addr, uint32_t rkey,
                         uint64_t size, Direction direction, MemcpyCallback callback,
                         bool copy_bytes) {
  if (qp_ == nullptr) {
    // Pool evicted this lane since the caller cached the channel; reconnect.
    Status attached = device_->AttachLane(this);
    if (!attached.ok()) {
      device_->simulator()->ScheduleAfter(
          0, [cb = std::move(callback), attached]() { cb(attached); });
      return;
    }
  }
  rdma::SendWorkRequest wr;
  wr.copy_bytes = copy_bytes;
  wr.wr_id = device_->next_wr_id_++;
  wr.opcode = (direction == Direction::kLocalToRemote) ? rdma::Opcode::kWrite
                                                       : rdma::Opcode::kRead;
  wr.local_addr = reinterpret_cast<uint64_t>(local_addr);
  wr.lkey = lkey;
  wr.length = size;
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  device_->pending_sends_[wr.wr_id] = std::move(callback);
  Status s = qp_->PostSend(wr);
  if (!s.ok()) {
    auto it = device_->pending_sends_.find(wr.wr_id);
    MemcpyCallback cb = std::move(it->second);
    device_->pending_sends_.erase(it);
    // Deliver the failure asynchronously for a uniform contract.
    device_->simulator()->ScheduleAfter(0, [cb = std::move(cb), s]() { cb(s); });
    return;
  }
  if (device_->memcpy_timeout_ns_ > 0) {
    RdmaDevice* dev = device_;
    const uint64_t wr_id = wr.wr_id;
    dev->simulator()->ScheduleAfter(dev->memcpy_timeout_ns_, [dev, wr_id]() {
      auto it = dev->pending_sends_.find(wr_id);
      if (it == dev->pending_sends_.end()) return;  // Completed in time.
      MemcpyCallback cb = std::move(it->second);
      dev->pending_sends_.erase(it);
      dev->abandoned_wr_ids_.insert(wr_id);
      cb(DeadlineExceeded("RDMA memcpy timed out"));
    });
  }
}

void RdmaChannel::MemcpyBatch(std::vector<BatchWrite> writes) {
  if (writes.empty()) return;
  if (qp_ == nullptr) {
    Status attached = device_->AttachLane(this);
    if (!attached.ok()) {
      for (BatchWrite& w : writes) {
        if (!w.callback) continue;
        device_->simulator()->ScheduleAfter(
            0, [cb = std::move(w.callback), attached]() { cb(attached); });
      }
      return;
    }
  }
  std::vector<rdma::SendWorkRequest> wrs;
  wrs.reserve(writes.size());
  std::vector<uint64_t> wr_ids;
  wr_ids.reserve(writes.size());
  for (BatchWrite& w : writes) {
    rdma::SendWorkRequest wr;
    wr.wr_id = device_->next_wr_id_++;
    wr.opcode = rdma::Opcode::kWrite;
    wr.local_addr = reinterpret_cast<uint64_t>(w.local_addr);
    wr.lkey = w.lkey;
    wr.length = w.size;
    wr.remote_addr = w.remote_addr;
    wr.rkey = w.rkey;
    wr.copy_bytes = w.copy_bytes;
    wrs.push_back(wr);
    wr_ids.push_back(wr.wr_id);
    device_->pending_sends_[wr.wr_id] = std::move(w.callback);
  }
  Status s = qp_->PostSendBatch(std::move(wrs));
  if (!s.ok()) {
    // Whole-batch post failure: deliver it to every entry, asynchronously for
    // a uniform contract.
    for (uint64_t wr_id : wr_ids) {
      auto it = device_->pending_sends_.find(wr_id);
      if (it == device_->pending_sends_.end()) continue;
      MemcpyCallback cb = std::move(it->second);
      device_->pending_sends_.erase(it);
      if (cb) {
        device_->simulator()->ScheduleAfter(0, [cb = std::move(cb), s]() { cb(s); });
      }
    }
    return;
  }
  if (device_->memcpy_timeout_ns_ > 0) {
    RdmaDevice* dev = device_;
    for (uint64_t wr_id : wr_ids) {
      dev->simulator()->ScheduleAfter(dev->memcpy_timeout_ns_, [dev, wr_id]() {
        auto it = dev->pending_sends_.find(wr_id);
        if (it == dev->pending_sends_.end()) return;  // Completed in time.
        MemcpyCallback cb = std::move(it->second);
        dev->pending_sends_.erase(it);
        dev->abandoned_wr_ids_.insert(wr_id);
        if (cb) cb(DeadlineExceeded("RDMA memcpy timed out"));
      });
    }
  }
}

// ------------------------------------------------------------------ RdmaDevice

RdmaDevice::RdmaDevice(DeviceDirectory* directory, int num_qps_per_peer, const Endpoint& local)
    : directory_(directory),
      local_(local),
      nic_(directory->rdma_fabric()->nic(local.host_id)),
      num_qps_per_peer_(num_qps_per_peer) {}

RdmaDevice::~RdmaDevice() {
  for (const rdma::MemoryRegion& mr : rpc_slab_mrs_) {
    (void)nic_->DeregisterMemory(mr);
  }
  // Returns every pooled lane touching this endpoint (peer devices are told
  // to drop their bindings). RPC QPs stay with the NIC, as before.
  directory_->qp_pool_.UnregisterEndpoint(local_);
  directory_->devices_.erase(local_);
}

void RdmaDevice::DropPendingCallbacks() {
  pending_sends_.clear();
  pending_calls_.clear();
}

StatusOr<std::unique_ptr<RdmaDevice>> RdmaDevice::Create(DeviceDirectory* directory,
                                                         int num_cqs, int num_qps_per_peer,
                                                         const Endpoint& local) {
  if (num_cqs <= 0 || num_qps_per_peer <= 0) {
    return InvalidArgument("num_cqs and num_qps_per_peer must be positive");
  }
  if (local.host_id < 0 ||
      local.host_id >= directory->rdma_fabric()->fabric()->num_hosts()) {
    return InvalidArgument(StrCat("endpoint host out of range: ", local.ToString()));
  }
  if (directory->Find(local) != nullptr) {
    return AlreadyExists(StrCat("endpoint already bound: ", local.ToString()));
  }
  auto dev = std::unique_ptr<RdmaDevice>(new RdmaDevice(directory, num_qps_per_peer, local));
  for (int i = 0; i < num_cqs; ++i) {
    rdma::CompletionQueue* cq = dev->nic_->CreateCompletionQueue();
    RdmaDevice* raw = dev.get();
    cq->SetCompletionHandler([raw, cq]() { raw->DrainCq(cq); });
    dev->cqs_.push_back(cq);
  }
  {
    RdmaDevice* raw = dev.get();
    RDMADL_RETURN_IF_ERROR(directory->qp_pool()->RegisterEndpoint(
        local, local.host_id, /*cqs=*/[raw]() { return raw->NextCq(); },
        /*on_evict=*/[raw](const Endpoint& /*self*/, const Endpoint& remote, int lane) {
          raw->OnLaneEvicted(remote, lane);
        }));
  }
  directory->devices_[local] = dev.get();
  return dev;
}

StatusOr<MemRegion> RdmaDevice::AllocateMemRegion(uint64_t size) {
  if (size == 0) {
    return InvalidArgument("AllocateMemRegion: size must be > 0");
  }
  auto impl = std::make_shared<MemRegion::Impl>();
  impl->storage = std::make_unique<uint8_t[]>(size);
  impl->data = impl->storage.get();
  impl->size = size;
  RDMADL_ASSIGN_OR_RETURN(impl->mr, nic_->RegisterMemory(impl->data, size));
  impl->device = this;
  return MemRegion(std::move(impl));
}

rdma::CompletionQueue* RdmaDevice::NextCq() {
  rdma::CompletionQueue* cq = cqs_[next_cq_];
  next_cq_ = (next_cq_ + 1) % static_cast<int>(cqs_.size());
  return cq;
}

Status RdmaDevice::Connect(RdmaDevice* remote) {
  PeerConnection& mine = peers_[remote->local_];
  PeerConnection& theirs = remote->peers_[local_];
  CHECK(mine.channels.empty() && theirs.channels.empty());
  if (num_qps_per_peer_ != remote->num_qps_per_peer_) {
    return InvalidArgument("peer devices configured with different QP counts");
  }
  // Data lanes come from the shared pool on first use; only the dedicated
  // two-sided QP for the address-distribution RPC is created eagerly (it has
  // to exist before any one-sided traffic can be set up). It is unpooled but
  // still counts against the NIC's QP cap, so make room first.
  rdma::QpPool* pool = directory_->qp_pool();
  const bool colocated = local_.host_id == remote->local_.host_id;
  RDMADL_RETURN_IF_ERROR(pool->ReserveCapacity(local_.host_id, colocated ? 2 : 1));
  if (!colocated) {
    RDMADL_RETURN_IF_ERROR(pool->ReserveCapacity(remote->local_.host_id, 1));
  }
  rdma::CompletionQueue* my_cq = NextCq();
  rdma::CompletionQueue* their_cq = remote->NextCq();
  RDMADL_ASSIGN_OR_RETURN(rdma::QueuePair * a, nic_->TryCreateQueuePair(my_cq, my_cq));
  StatusOr<rdma::QueuePair*> b = remote->nic_->TryCreateQueuePair(their_cq, their_cq);
  if (!b.ok()) {
    (void)nic_->DestroyQueuePair(a);
    return b.status();
  }
  RDMADL_RETURN_IF_ERROR(a->Connect(*b));
  mine.rpc_qp = a;
  theirs.rpc_qp = *b;
  rpc_qps_[a->qp_num()] = a;
  remote->rpc_qps_[(*b)->qp_num()] = *b;
  for (int i = 0; i < kRpcRecvDepth; ++i) {
    PostRpcRecv(a, AcquireRpcSlot());
    remote->PostRpcRecv(*b, remote->AcquireRpcSlot());
  }
  // Channel wrappers exist for the connection's lifetime; their QP bindings
  // attach lazily (AttachLane) and drop on pool eviction.
  for (int i = 0; i < num_qps_per_peer_; ++i) {
    mine.channels.push_back(
        std::unique_ptr<RdmaChannel>(new RdmaChannel(this, remote->local_, i, nullptr)));
    theirs.channels.push_back(
        std::unique_ptr<RdmaChannel>(new RdmaChannel(remote, local_, i, nullptr)));
  }
  return OkStatus();
}

StatusOr<RdmaChannel*> RdmaDevice::GetChannel(const Endpoint& remote, int qp_idx) {
  if (qp_idx < 0 || qp_idx >= num_qps_per_peer_) {
    return InvalidArgument(StrCat("qp_idx out of range: ", qp_idx));
  }
  auto it = peers_.find(remote);
  if (it == peers_.end()) {
    RdmaDevice* peer = directory_->Find(remote);
    if (peer == nullptr) {
      return NotFound(StrCat("no device bound at ", remote.ToString()));
    }
    if (peer == this) {
      return InvalidArgument("cannot open a channel to self");
    }
    RDMADL_RETURN_IF_ERROR(Connect(peer));
    it = peers_.find(remote);
  }
  RdmaChannel* channel = it->second.channels[qp_idx].get();
  RDMADL_RETURN_IF_ERROR(AttachLane(channel));
  return channel;
}

Status RdmaDevice::AttachLane(RdmaChannel* channel) {
  RDMADL_ASSIGN_OR_RETURN(
      rdma::QueuePair * qp,
      directory_->qp_pool()->Acquire(local_, channel->remote_, channel->qp_index_));
  channel->qp_ = qp;
  return OkStatus();
}

void RdmaDevice::OnLaneEvicted(const Endpoint& remote, int lane) {
  auto it = peers_.find(remote);
  if (it == peers_.end()) return;
  if (lane < static_cast<int>(it->second.channels.size())) {
    it->second.channels[lane]->qp_ = nullptr;
  }
}

void RdmaDevice::DrainCq(rdma::CompletionQueue* cq) {
  rdma::WorkCompletion wc;
  while (cq->Poll(&wc)) {
    if (wc.opcode == rdma::Opcode::kRecv) {
      // Inbound RPC message.
      auto slot_it = rpc_recv_slots_.find(wc.wr_id);
      CHECK(slot_it != rpc_recv_slots_.end());
      RpcSlot slot = slot_it->second;
      rpc_recv_slots_.erase(slot_it);
      auto qp_it = rpc_qps_.find(wc.qp_num);
      CHECK(qp_it != rpc_qps_.end());
      rdma::QueuePair* qp = qp_it->second;
      --rpc_recv_posted_[qp->qp_num()];
      if (wc.status.ok()) {
        HandleRpcInbound(qp, slot.data, wc.byte_len);
      } else if (qp->in_error()) {
        // Flushed recv: park the slot. Reposting now would be flush-completed
        // again immediately; RecoverChannels replenishes the queue once the
        // QP is back in service.
        ReleaseRpcSlot(slot);
        continue;
      }
      // Keep the receive queue replenished. A failed completion reaching this
      // point is a stale flush that surfaced after the QP was already
      // recovered; its slot may be reposted, but never past the depth a
      // concurrent RecoverChannels already restored.
      if (rpc_recv_posted_[qp->qp_num()] >= kRpcRecvDepth) {
        ReleaseRpcSlot(slot);
        continue;
      }
      PostRpcRecv(qp, slot);
      continue;
    }
    // Send-side completion: Memcpy callback or RPC send slot recycle.
    auto pending_it = pending_sends_.find(wc.wr_id);
    if (pending_it != pending_sends_.end()) {
      MemcpyCallback cb = std::move(pending_it->second);
      pending_sends_.erase(pending_it);
      cb(wc.status);
      continue;
    }
    auto slot_it = rpc_send_slots_.find(wc.wr_id);
    if (slot_it != rpc_send_slots_.end()) {
      ReleaseRpcSlot(slot_it->second);
      rpc_send_slots_.erase(slot_it);
      if (!wc.status.ok()) {
        LOG(ERROR) << "RPC send completion error: " << wc.status;
      }
      continue;
    }
    if (abandoned_wr_ids_.erase(wc.wr_id) > 0) {
      continue;  // Late completion of a timed-out Memcpy; already reported.
    }
    LOG(WARNING) << "orphan completion wr_id=" << wc.wr_id;
  }
}

Status RdmaDevice::RecoverChannels() {
  for (auto& [endpoint, peer] : peers_) {
    for (const std::unique_ptr<RdmaChannel>& channel : peer.channels) {
      rdma::QueuePair* qp = channel->qp_;
      if (qp != nullptr && qp->in_error()) RDMADL_RETURN_IF_ERROR(qp->Recover());
    }
    if (peer.rpc_qp == nullptr) continue;
    if (peer.rpc_qp->in_error()) {
      RDMADL_RETURN_IF_ERROR(peer.rpc_qp->Recover());
    }
    // Unconditional top-up, so the call is idempotent: a second invocation —
    // or one racing in-flight flushed recvs whose completions have not drained
    // yet — finds the counter already at depth and posts nothing. The
    // counter deliberately includes flushed-but-undrained WRs; their eventual
    // completions repost themselves (capped at the same depth in DrainCq).
    while (rpc_recv_posted_[peer.rpc_qp->qp_num()] < kRpcRecvDepth) {
      PostRpcRecv(peer.rpc_qp, AcquireRpcSlot());
    }
  }
  return OkStatus();
}

int RdmaDevice::rpc_recvs_posted(const Endpoint& remote) const {
  auto it = peers_.find(remote);
  if (it == peers_.end() || it->second.rpc_qp == nullptr) return -1;
  auto posted = rpc_recv_posted_.find(it->second.rpc_qp->qp_num());
  return posted == rpc_recv_posted_.end() ? 0 : posted->second;
}

// --------------------------------------------------------------------- MiniRPC

RdmaDevice::RpcSlot RdmaDevice::AcquireRpcSlot() {
  if (rpc_free_slots_.empty()) {
    auto slab = std::make_unique<uint8_t[]>(kRpcSlotBytes * kRpcSlotsPerSlab);
    StatusOr<rdma::MemoryRegion> mr =
        nic_->RegisterMemory(slab.get(), kRpcSlotBytes * kRpcSlotsPerSlab);
    CHECK(mr.ok()) << mr.status();
    for (int i = 0; i < kRpcSlotsPerSlab; ++i) {
      rpc_free_slots_.push_back(RpcSlot{slab.get() + i * kRpcSlotBytes, mr->lkey});
    }
    rpc_slabs_.push_back(std::move(slab));
    rpc_slab_mrs_.push_back(*mr);
  }
  RpcSlot slot = rpc_free_slots_.back();
  rpc_free_slots_.pop_back();
  return slot;
}

void RdmaDevice::ReleaseRpcSlot(RpcSlot slot) { rpc_free_slots_.push_back(slot); }

void RdmaDevice::PostRpcRecv(rdma::QueuePair* qp, RpcSlot slot) {
  rdma::RecvWorkRequest wr;
  wr.wr_id = next_wr_id_++;
  wr.addr = reinterpret_cast<uint64_t>(slot.data);
  wr.lkey = slot.lkey;
  wr.length = kRpcSlotBytes;
  rpc_recv_slots_[wr.wr_id] = slot;
  ++rpc_recv_posted_[qp->qp_num()];
  Status s = qp->PostRecv(wr);
  CHECK(s.ok()) << s;
}

void RdmaDevice::SendRpcFrame(rdma::QueuePair* qp, const std::vector<uint8_t>& frame) {
  CHECK_LE(frame.size(), kRpcSlotBytes)
      << "MiniRPC frame exceeds slot size; address-distribution messages are small by design";
  RpcSlot slot = AcquireRpcSlot();
  std::memcpy(slot.data, frame.data(), frame.size());
  rdma::SendWorkRequest wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = rdma::Opcode::kSend;
  wr.local_addr = reinterpret_cast<uint64_t>(slot.data);
  wr.lkey = slot.lkey;
  wr.length = frame.size();
  rpc_send_slots_[wr.wr_id] = slot;
  Status s = qp->PostSend(wr);
  CHECK(s.ok()) << s;
}

void RdmaDevice::RegisterRpcHandler(const std::string& method, RpcHandler handler) {
  rpc_handlers_[method] = std::move(handler);
}

void RdmaDevice::Call(const Endpoint& remote, const std::string& method,
                      std::vector<uint8_t> payload, RpcCallback callback) {
  // Ensure the connection (and its RPC QP) exists.
  StatusOr<RdmaChannel*> chan = GetChannel(remote, 0);
  if (!chan.ok()) {
    simulator()->ScheduleAfter(0, [callback = std::move(callback), s = chan.status()]() {
      callback(s, {});
    });
    return;
  }
  const uint64_t call_id = next_call_id_++;
  pending_calls_[call_id] = PendingCall{std::move(callback)};

  std::vector<uint8_t> frame;
  frame.reserve(kRpcHeaderBytes + method.size() + payload.size());
  frame.push_back(kRpcRequest);
  PutU64(&frame, call_id);
  PutU16(&frame, static_cast<uint16_t>(method.size()));
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.insert(frame.end(), method.begin(), method.end());
  frame.insert(frame.end(), payload.begin(), payload.end());

  rdma::QueuePair* qp = peers_[remote].rpc_qp;
  // Caller-side dispatch cost, then post.
  simulator()->ScheduleAfter(cost().mini_rpc_dispatch_ns,
                             [this, qp, frame = std::move(frame)]() { SendRpcFrame(qp, frame); });
}

void RdmaDevice::HandleRpcInbound(rdma::QueuePair* qp, const uint8_t* data, uint64_t len) {
  CHECK_GE(len, kRpcHeaderBytes);
  const uint8_t type = data[0];
  const uint64_t call_id = GetU64(data + 1);
  const uint16_t method_len = GetU16(data + 9);
  const uint32_t payload_len = GetU32(data + 11);
  CHECK_EQ(len, kRpcHeaderBytes + method_len + payload_len);
  const uint8_t* body = data + kRpcHeaderBytes;

  if (type == kRpcRequest) {
    std::string method(reinterpret_cast<const char*>(body), method_len);
    std::vector<uint8_t> payload(body + method_len, body + method_len + payload_len);
    // Handler dispatch cost on the callee side.
    simulator()->ScheduleAfter(
        cost().mini_rpc_dispatch_ns, [this, qp, method, payload = std::move(payload), call_id]() {
          std::vector<uint8_t> frame;
          auto it = rpc_handlers_.find(method);
          if (it == rpc_handlers_.end()) {
            frame.push_back(kRpcError);
            PutU64(&frame, call_id);
            PutU16(&frame, 0);
            PutU32(&frame, 0);
          } else {
            std::vector<uint8_t> response = it->second(payload);
            frame.push_back(kRpcResponse);
            PutU64(&frame, call_id);
            PutU16(&frame, 0);
            PutU32(&frame, static_cast<uint32_t>(response.size()));
            frame.insert(frame.end(), response.begin(), response.end());
          }
          SendRpcFrame(qp, frame);
        });
    return;
  }

  // Response or error: complete the pending call.
  auto it = pending_calls_.find(call_id);
  if (it == pending_calls_.end()) {
    LOG(WARNING) << "RPC response for unknown call " << call_id;
    return;
  }
  RpcCallback cb = std::move(it->second.callback);
  pending_calls_.erase(it);
  if (type == kRpcError) {
    cb(NotFound("no such RPC method"), {});
  } else {
    std::vector<uint8_t> payload(body + method_len, body + method_len + payload_len);
    cb(OkStatus(), payload);
  }
}

}  // namespace device
}  // namespace rdmadl
