// The paper's RDMA "device" communication library (§3.1, Table 1).
//
// A remote machine is abstracted as a device with a simple memory interface:
//
//   RdmaDevice::Create(num_cqs, num_qps_per_peer, local_endpoint)
//   device->AllocateMemRegion(size_in_bytes)            -> MemRegion
//   device->GetChannel(remote_endpoint, qp_idx)         -> RdmaChannel
//   channel->Memcpy(local, remote, size, direction, cb) -> async one-sided op
//
// plus a vanilla send/recv RPC used only to distribute remote memory
// addresses (off the critical path).
//
// The device is configured with the number of CQs and of QPs per connected
// peer; QPs are spread over the CQs round-robin (Figure 4), and each CQ has a
// poller context that dispatches completions, so a multi-threaded workload
// can spread channels over QPs to balance load and synchronization cost.
#ifndef RDMADL_SRC_DEVICE_RDMA_DEVICE_H_
#define RDMADL_SRC_DEVICE_RDMA_DEVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/rdma/qp_pool.h"
#include "src/rdma/verbs.h"
#include "src/util/endpoint.h"
#include "src/util/status.h"

namespace rdmadl {
namespace device {

class RdmaDevice;

// Descriptor of a remote, RDMA-accessible region: everything a sender needs
// to target it with a one-sided verb. This is what the address-distribution
// RPC ships across the wire.
struct RemoteRegion {
  uint64_t addr = 0;
  uint32_t rkey = 0;
  uint64_t length = 0;

  static constexpr size_t kWireSize = 8 + 4 + 8;
  void EncodeTo(std::vector<uint8_t>* out) const;
  static StatusOr<RemoteRegion> Decode(const uint8_t* data, size_t len);
};

// An RDMA-accessible local memory region, allocated from and owned by a
// device. Movable handle; freeing happens when the handle (and its copies)
// are gone.
class MemRegion {
 public:
  MemRegion() = default;

  uint8_t* data() const { return impl_ ? impl_->data : nullptr; }
  uint64_t size() const { return impl_ ? impl_->size : 0; }
  uint32_t lkey() const { return impl_ ? impl_->mr.lkey : 0; }
  uint32_t rkey() const { return impl_ ? impl_->mr.rkey : 0; }
  bool valid() const { return impl_ != nullptr; }

  // Descriptor for the whole region, to hand to a remote peer.
  RemoteRegion Remote() const;
  // Descriptor for a sub-range [offset, offset+length).
  StatusOr<RemoteRegion> RemoteSlice(uint64_t offset, uint64_t length) const;

 private:
  friend class RdmaDevice;
  struct Impl {
    ~Impl();
    uint8_t* data = nullptr;
    uint64_t size = 0;
    rdma::MemoryRegion mr;
    RdmaDevice* device = nullptr;
    std::unique_ptr<uint8_t[]> storage;
  };
  explicit MemRegion(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

enum class Direction {
  kLocalToRemote,  // One-sided RDMA write.
  kRemoteToLocal,  // One-sided RDMA read.
};

using MemcpyCallback = std::function<void(const Status&)>;

// A channel to one remote device over one specific QP.
class RdmaChannel {
 public:
  // Asynchronously copies |size| bytes between |local_addr| (inside
  // |local_region|) and |remote_addr| (inside |remote|). |callback| fires,
  // in virtual time, when the verb completes locally.
  void Memcpy(uint64_t local_addr, const MemRegion& local_region, uint64_t remote_addr,
              const RemoteRegion& remote, uint64_t size, Direction direction,
              MemcpyCallback callback);

  // Core overload: local side given as raw registered pointer + lkey.
  // |copy_bytes| = false elides the payload memcpy (virtual-memory benchmark
  // mode); timing and completion semantics are unchanged.
  void Memcpy(void* local_addr, uint32_t lkey, uint64_t remote_addr, uint32_t rkey,
              uint64_t size, Direction direction, MemcpyCallback callback,
              bool copy_bytes = true);

  // One entry of a doorbell-chained write batch (MemcpyBatch).
  struct BatchWrite {
    void* local_addr = nullptr;
    uint32_t lkey = 0;
    uint64_t remote_addr = 0;
    uint32_t rkey = 0;
    uint64_t size = 0;      // Must be > 0.
    bool copy_bytes = true;
    MemcpyCallback callback;  // Fires at that entry's completion.
  };

  // Posts every entry as one doorbell-chained RDMA-write WQE list: the
  // per-message posting and NIC-processing overheads are paid once for the
  // whole batch (the transfer engine's small-tensor coalescing). Entries
  // complete in posting order; the chain shares fate on transport failure.
  void MemcpyBatch(std::vector<BatchWrite> writes);

  int qp_index() const { return qp_index_; }
  const Endpoint& remote() const { return remote_; }

 private:
  friend class RdmaDevice;
  RdmaChannel(RdmaDevice* device, Endpoint remote, int qp_index, rdma::QueuePair* qp)
      : device_(device), remote_(remote), qp_index_(qp_index), qp_(qp) {}

  RdmaDevice* device_;
  Endpoint remote_;
  int qp_index_;
  rdma::QueuePair* qp_;
};

// MiniRPC handler: gets the request payload, returns the response payload.
using RpcHandler = std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;
using RpcCallback = std::function<void(const Status&, const std::vector<uint8_t>&)>;

// Directory of devices in the simulated cluster; stands in for out-of-band
// connection management (RDMA CM exchange over Ethernet). Also owns the
// cluster-wide QP pool: data lanes between any two devices are shared,
// on-demand, and LRU-evicted when a NIC hits cost.max_queue_pairs, so total
// QP count stays sublinear in hosts² instead of every peer pair paying
// num_qps_per_peer contexts up front.
class DeviceDirectory {
 public:
  explicit DeviceDirectory(rdma::RdmaFabric* rdma_fabric)
      : rdma_fabric_(rdma_fabric), qp_pool_(rdma_fabric) {}

  rdma::RdmaFabric* rdma_fabric() const { return rdma_fabric_; }
  rdma::QpPool* qp_pool() { return &qp_pool_; }
  RdmaDevice* Find(const Endpoint& ep) const;

 private:
  friend class RdmaDevice;
  rdma::RdmaFabric* rdma_fabric_;
  rdma::QpPool qp_pool_;
  std::unordered_map<Endpoint, RdmaDevice*, EndpointHash> devices_;
};

class RdmaDevice {
 public:
  // Creates a device bound to |local| with |num_cqs| completion queues and
  // |num_qps_per_peer| QPs for each connected peer (§3.1: the paper uses 4/4).
  static StatusOr<std::unique_ptr<RdmaDevice>> Create(DeviceDirectory* directory, int num_cqs,
                                                      int num_qps_per_peer,
                                                      const Endpoint& local);
  ~RdmaDevice();

  RdmaDevice(const RdmaDevice&) = delete;
  RdmaDevice& operator=(const RdmaDevice&) = delete;

  // Allocates an RDMA-accessible memory region of |size| bytes, registered
  // with the NIC (one registration per region; prefer few large regions).
  StatusOr<MemRegion> AllocateMemRegion(uint64_t size);

  // Returns the channel to |remote| over QP |qp_idx| (0 <= qp_idx <
  // num_qps_per_peer), establishing the connection on first use.
  StatusOr<RdmaChannel*> GetChannel(const Endpoint& remote, int qp_idx);

  // ---- Vanilla RPC for address distribution (not performance critical) ----
  void RegisterRpcHandler(const std::string& method, RpcHandler handler);
  void Call(const Endpoint& remote, const std::string& method, std::vector<uint8_t> payload,
            RpcCallback callback);

  // Recovers every errored QP to this device's peers (data and RPC QPs) after
  // a transport failure has been observed and the simulator has quiesced.
  // Flushed RPC receive buffers are reposted. Idempotent: repeated calls (even
  // with flushed recv completions still in flight in the CQs) never over- or
  // under-fill the RPC receive queues.
  Status RecoverChannels();

  // Outstanding RPC recv WRs toward |remote|'s rpc QP (tests: the recovery
  // invariant is that this returns the full depth after RecoverChannels).
  // -1 when not connected. The depth itself is rpc_recv_depth().
  int rpc_recvs_posted(const Endpoint& remote) const;
  static constexpr int rpc_recv_depth() { return kRpcRecvDepth; }

  // Drops, without invoking, every pending Memcpy and RPC callback. Teardown
  // aid: callbacks abandoned by an aborted step may own tensors whose buffers
  // deallocate through the process's allocators, so they must be destroyed
  // while those allocators are still alive — HostRuntime calls this from its
  // destructor before any of its members go away. Not for use mid-run.
  void DropPendingCallbacks();

  // Watchdog for RdmaChannel::Memcpy: a callback still pending after this
  // much virtual time fires with kDeadlineExceeded and the eventual late
  // completion (if any) is discarded. 0 = disabled (default).
  void set_memcpy_timeout_ns(int64_t timeout_ns) { memcpy_timeout_ns_ = timeout_ns; }
  int64_t memcpy_timeout_ns() const { return memcpy_timeout_ns_; }

  const Endpoint& endpoint() const { return local_; }
  rdma::QpPool* qp_pool() const { return directory_->qp_pool(); }
  rdma::NicDevice* nic() const { return nic_; }
  sim::Simulator* simulator() const { return nic_->simulator(); }
  const net::CostModel& cost() const { return nic_->cost(); }
  int num_cqs() const { return static_cast<int>(cqs_.size()); }
  int num_qps_per_peer() const { return num_qps_per_peer_; }

 private:
  friend class RdmaChannel;
  friend struct MemRegion::Impl;

  // Data QPs are not owned here: channels bind lazily to pooled lanes
  // (DeviceDirectory::qp_pool) and drop the binding when the pool evicts
  // them. Channel wrappers themselves live for the device's lifetime, so
  // callers may cache RdmaChannel* across evictions.
  struct PeerConnection {
    std::vector<std::unique_ptr<RdmaChannel>> channels;
    rdma::QueuePair* rpc_qp = nullptr;          // Dedicated two-sided RPC QP.
  };

  struct PendingCall {
    RpcCallback callback;
  };

  RdmaDevice(DeviceDirectory* directory, int num_qps_per_peer, const Endpoint& local);

  // Establishes the RPC QP pair and lazy channel wrappers between this
  // device and |remote|; data lanes attach from the pool on first use.
  Status Connect(RdmaDevice* remote);
  // Binds |channel| to its pooled lane (creating or reconnecting it on
  // demand); a pool hit only touches the LRU clock.
  Status AttachLane(RdmaChannel* channel);
  // Pool eviction callback: drop the cached QP binding so the next use
  // reattaches.
  void OnLaneEvicted(const Endpoint& remote, int lane);
  // Picks the next CQ round-robin for a newly created QP (Figure 4).
  rdma::CompletionQueue* NextCq();
  // Drains one CQ, dispatching Memcpy callbacks and RPC messages.
  void DrainCq(rdma::CompletionQueue* cq);

  // A fixed-size message buffer carved out of a registered slab; RPC sends
  // and receives borrow slots from a free list so the library registers few,
  // large regions rather than one MR per message.
  struct RpcSlot {
    uint8_t* data = nullptr;
    uint32_t lkey = 0;
  };

  RpcSlot AcquireRpcSlot();
  void ReleaseRpcSlot(RpcSlot slot);
  void HandleRpcInbound(rdma::QueuePair* qp, const uint8_t* data, uint64_t len);
  void SendRpcFrame(rdma::QueuePair* qp, const std::vector<uint8_t>& frame);
  void PostRpcRecv(rdma::QueuePair* qp, RpcSlot slot);

  DeviceDirectory* directory_;
  Endpoint local_;
  rdma::NicDevice* nic_;
  int num_qps_per_peer_;
  int next_cq_ = 0;
  uint64_t next_wr_id_ = 1;
  uint64_t next_call_id_ = 1;

  int64_t memcpy_timeout_ns_ = 0;

  std::vector<rdma::CompletionQueue*> cqs_;
  std::map<Endpoint, PeerConnection> peers_;
  std::unordered_map<uint64_t, MemcpyCallback> pending_sends_;
  // Memcpys whose timeout already fired; their late completions are dropped.
  std::unordered_set<uint64_t> abandoned_wr_ids_;
  // Outstanding RPC recv WRs per rpc_qp (qp_num -> count), so recovery knows
  // how many flushed buffers to repost.
  std::unordered_map<uint32_t, int> rpc_recv_posted_;
  std::unordered_map<std::string, RpcHandler> rpc_handlers_;
  std::unordered_map<uint64_t, PendingCall> pending_calls_;
  // qp_num -> owning QP, for routing inbound RPC messages.
  std::unordered_map<uint32_t, rdma::QueuePair*> rpc_qps_;
  // In-flight RPC slots keyed by wr_id (sends await completion to recycle;
  // recvs await the inbound message).
  std::unordered_map<uint64_t, RpcSlot> rpc_send_slots_;
  std::unordered_map<uint64_t, RpcSlot> rpc_recv_slots_;
  std::vector<std::unique_ptr<uint8_t[]>> rpc_slabs_;
  // One MR per slab, deregistered at device teardown (leaving them would
  // leave rkeys naming freed slab memory — found by RdmaCheck).
  std::vector<rdma::MemoryRegion> rpc_slab_mrs_;
  std::vector<RpcSlot> rpc_free_slots_;

  static constexpr uint64_t kRpcSlotBytes = 64 * 1024;
  static constexpr int kRpcSlotsPerSlab = 16;
  static constexpr int kRpcRecvDepth = 8;
};

}  // namespace device
}  // namespace rdmadl

#endif  // RDMADL_SRC_DEVICE_RDMA_DEVICE_H_
