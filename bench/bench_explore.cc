// Schedule-space exploration report (ISSUE 9).
//
// Two tables quantify the model checker itself rather than the stack under
// test:
//
//   * State reduction: the same fixed schedule budget with and without the
//     happens-before partial-order reduction, on a workload whose transfers
//     are provably independent (disjoint links, disjoint hosts). The
//     interesting number is the fraction of naive tie-branches the reduction
//     discards — the acceptance bar is >= 50% on this workload — and the
//     strictly smaller frontier the pruned search enqueues.
//
//   * Mutation detection: every seeded protocol mutation (src/check/
//     mutation.h) run under the explorer until its first failing schedule,
//     reporting schedules-to-detection, the failure class, and the length of
//     the delta-debugged reproducer. This is the self-validation loop: a
//     checker that cannot re-find a planted bug within a small budget is not
//     earning its keep.
//
// Everything printed to stdout derives from virtual time and deterministic
// counters, so two runs emit byte-identical reports (scripts/check.sh
// --explore diffs them). Wall-clock throughput (schedules/sec) is real time
// and goes to stderr only.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/explore.h"
#include "src/check/mutation.h"
#include "src/check/rdma_check.h"
#include "src/collective/collective.h"
#include "src/comm/transfer_engine.h"
#include "src/device/rdma_device.h"
#include "src/net/fabric.h"
#include "src/sim/explore.h"
#include "src/sim/fault.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace {

// A cluster built on the replay's externally-owned simulator; mirrors the
// harness in tests/explore_test.cc.
struct ExploreWorld {
  ExploreWorld(sim::Simulator& simulator, int num_hosts, const net::CostModel& cost_model = {})
      : cost(cost_model), fabric(&simulator, cost, num_hosts), rdma(&fabric), directory(&rdma) {}

  std::unique_ptr<device::RdmaDevice> MakeDevice(int host) {
    auto dev = device::RdmaDevice::Create(&directory, /*num_cqs=*/2, /*num_qps_per_peer=*/4,
                                          Endpoint{host, 7000});
    CHECK(dev.ok()) << dev.status();
    return std::move(dev).value();
  }

  net::CostModel cost;
  net::Fabric fabric;
  rdma::RdmaFabric rdma;
  device::DeviceDirectory directory;
};

struct FlagPoller {
  sim::Simulator* simulator = nullptr;
  const uint8_t* flag = nullptr;
  int host = -1;
  bool trusted = false;

  static void Schedule(std::shared_ptr<FlagPoller> self, int64_t delay_ns) {
    sim::Simulator* simulator = self->simulator;
    simulator->ScheduleAfterJittered(delay_ns, [self = std::move(self)] {
      if (self->trusted) return;
      if (*self->flag != 0) {
        check::OnFlagTrusted(self->host, self->flag, self->simulator->Now());
        self->trusted = true;
        return;
      }
      check::OnFlagPolled(self->host, self->flag, self->simulator->Now());
      Schedule(self, 200);
    });
  }
};

// Two 64 KB writes over disjoint links into disjoint hosts: every tie between
// their events commutes, the ideal showcase for the reduction.
check::WorkloadBody DisjointWritesBody() {
  return [](sim::Simulator& s) -> Status {
    ExploreWorld world(s, 4);
    auto dev0 = world.MakeDevice(0);
    auto dev1 = world.MakeDevice(1);
    auto dev2 = world.MakeDevice(2);
    auto dev3 = world.MakeDevice(3);
    constexpr uint64_t kBytes = 64 << 10;
    auto src_a = dev0->AllocateMemRegion(kBytes);
    auto dst_a = dev1->AllocateMemRegion(kBytes);
    auto src_b = dev2->AllocateMemRegion(kBytes);
    auto dst_b = dev3->AllocateMemRegion(kBytes);
    CHECK(src_a.ok() && dst_a.ok() && src_b.ok() && dst_b.ok());
    auto chan_a = dev0->GetChannel(dev1->endpoint(), 0);
    auto chan_b = dev2->GetChannel(dev3->endpoint(), 0);
    CHECK(chan_a.ok() && chan_b.ok());
    auto done = std::make_shared<int>(0);
    auto failed = std::make_shared<Status>(OkStatus());
    auto on_done = [done, failed](const Status& status) {
      if (!status.ok() && failed->ok()) *failed = status;
      ++*done;
    };
    (*chan_a)->Memcpy(src_a->data(), src_a->lkey(), dst_a->Remote().addr, dst_a->rkey(), kBytes,
                      device::Direction::kLocalToRemote, on_done);
    (*chan_b)->Memcpy(src_b->data(), src_b->lkey(), dst_b->Remote().addr, dst_b->rkey(), kBytes,
                      device::Direction::kLocalToRemote, on_done);
    Status run = s.RunUntilPredicate([done] { return *done == 2; });
    if (!run.ok()) return run;
    return *failed;
  };
}

// Striped 1 MB write with the first wire segment force-dropped: the hit
// stripe redelivers a transport-retry backoff later, opening the torn-read
// window the kFlagBeforeLastStripe mutation walks into.
check::WorkloadBody StripedFlagBody() {
  return [](sim::Simulator& s) -> Status {
    net::CostModel cost;
    cost.rdma_bandwidth_bytes_per_sec = 100e9;
    cost.rdma_qp_engine_bytes_per_sec = 50e9;  // Finite rate: enables striping.
    sim::FaultInjector injector(/*seed=*/1);
    sim::LinkFaultSpec spec;
    spec.drop_first_n = 1;
    injector.SetLinkFault(0, 1, spec);

    ExploreWorld world(s, 2, cost);
    world.fabric.SetFaultInjector(&injector);
    auto src_dev = world.MakeDevice(0);
    auto dst_dev = world.MakeDevice(1);
    constexpr uint64_t kBytes = 1 << 20;
    auto src = src_dev->AllocateMemRegion(kBytes);
    auto dst = dst_dev->AllocateMemRegion(kBytes);
    auto src_flag = src_dev->AllocateMemRegion(1);
    auto dst_flag = dst_dev->AllocateMemRegion(1);
    CHECK(src.ok() && dst.ok() && src_flag.ok() && dst_flag.ok());
    std::memset(src->data(), 0x5a, kBytes);
    src_flag->data()[0] = 1;
    dst_flag->data()[0] = 0;

    comm::TransferEngineOptions engine_options;
    engine_options.stripe_threshold_bytes = 256 << 10;
    comm::TransferEngine engine(src_dev.get(), engine_options);

    check::OnFlagLocation(1, dst_flag->data(), "bench.striped");
    check::OnFlagGuards(1, dst_flag->data(), dst->data(), kBytes);

    auto poller = std::make_shared<FlagPoller>();
    poller->simulator = &s;
    poller->flag = dst_flag->data();
    poller->host = 1;
    FlagPoller::Schedule(poller, 200);

    auto done = std::make_shared<bool>(false);
    auto result = std::make_shared<Status>(OkStatus());
    comm::TransferEngine::WriteDesc payload{src->data(), src->lkey(), dst->Remote().addr,
                                            dst->rkey(), kBytes, true};
    comm::TransferEngine::WriteDesc flag{src_flag->data(), src_flag->lkey(),
                                         dst_flag->Remote().addr, dst_flag->rkey(), 1, true};
    // Lane 1: lane 0 owns the dropped stripe; a flag queued there would
    // serialize behind the retry and hide the bug.
    engine.WriteWithFlag(dst_dev->endpoint(), payload, flag, /*lane_hint=*/1,
                         [done, result](const Status& status) {
                           *done = true;
                           if (!status.ok()) *result = status;
                         });
    Status run = s.RunUntilPredicate([done, poller] { return *done && poller->trusted; });
    if (!run.ok()) return run;
    return *result;
  };
}

// Direct write under a seeded per-segment drop probability, for the
// kRetryKeepsCursor mutation (visible the moment any mid-transfer retry
// redelivers).
check::WorkloadBody DroppyDirectWriteBody(uint64_t seed) {
  return [seed](sim::Simulator& s) -> Status {
    sim::FaultInjector injector(seed);
    sim::LinkFaultSpec spec;
    spec.drop_probability = 0.05;
    injector.SetLinkFault(0, 1, spec);

    ExploreWorld world(s, 2);
    world.fabric.SetFaultInjector(&injector);
    auto src_dev = world.MakeDevice(0);
    auto dst_dev = world.MakeDevice(1);
    constexpr uint64_t kBytes = 256 << 10;
    auto src = src_dev->AllocateMemRegion(kBytes);
    auto dst = dst_dev->AllocateMemRegion(kBytes);
    CHECK(src.ok() && dst.ok());
    auto chan = src_dev->GetChannel(dst_dev->endpoint(), 0);
    CHECK(chan.ok());
    auto done = std::make_shared<bool>(false);
    (*chan)->Memcpy(src->data(), src->lkey(), dst->Remote().addr, dst->rkey(), kBytes,
                    device::Direction::kLocalToRemote, [done](const Status&) { *done = true; });
    return s.RunUntilPredicate([done] { return *done; });
  };
}

// Two-rank ring all-reduce for the flag-protocol mutations.
check::WorkloadBody SmallAllReduceBody(uint64_t count) {
  return [count](sim::Simulator& s) -> Status {
    ExploreWorld world(s, 2);
    collective::CollectiveOptions options;
    options.pipeline_depth = 2;
    auto group = collective::CollectiveGroup::Create(&world.directory, {0, 1}, count, options);
    if (!group.ok()) return group.status();
    for (int r = 0; r < 2; ++r) {
      float* data = (*group)->data(r);
      for (uint64_t i = 0; i < count; ++i) data[i] = static_cast<float>(r + 1);
    }
    auto done = std::make_shared<bool>(false);
    auto result = std::make_shared<Status>(OkStatus());
    (*group)->AllReduce(count, [done, result](const Status& status) {
      *done = true;
      *result = status;
    });
    Status run = s.RunUntilPredicate([done] { return *done; }, /*max_events=*/400'000);
    if (!run.ok()) return run;
    return *result;
  };
}

double WallRate(const sim::ExploreStats& stats) { return stats.schedules_per_sec; }

void ReportStateReduction(double* total_rate, int* rate_samples) {
  bench::PrintHeader("Partial-order reduction: pruned vs naive branch set",
                     "Disjoint-transfer workload, fixed budget of 24 schedules; the reduction\n"
                     "must discard >= 50% of the naive tie-branches (acceptance bar).");
  sim::ExploreOptions options;
  options.name = "bench-por";
  options.max_schedules = 24;
  options.jitter_schedules = 0;
  options.minimize = false;

  sim::Explorer with_por(options);
  sim::ExploreResult reduced = with_por.Explore(check::CheckedWorkload(DisjointWritesBody()));
  CHECK(!reduced.failure_found) << reduced.Summary();

  options.use_por = false;
  sim::Explorer naive(options);
  sim::ExploreResult full = naive.Explore(check::CheckedWorkload(DisjointWritesBody()));
  CHECK(!full.failure_found) << full.Summary();

  std::printf("%-12s %10s %10s %10s %10s %10s\n", "mode", "schedules", "decisions", "naive-br",
              "pruned", "enqueued");
  bench::PrintRule();
  std::printf("%-12s %10llu %10llu %10llu %10llu %10llu\n", "POR",
              (unsigned long long)reduced.stats.schedules_run,
              (unsigned long long)reduced.stats.decision_points,
              (unsigned long long)reduced.stats.naive_branches,
              (unsigned long long)reduced.stats.branches_pruned,
              (unsigned long long)reduced.stats.branches_enqueued);
  std::printf("%-12s %10llu %10llu %10llu %10llu %10llu\n", "naive",
              (unsigned long long)full.stats.schedules_run,
              (unsigned long long)full.stats.decision_points,
              (unsigned long long)full.stats.naive_branches,
              (unsigned long long)full.stats.branches_pruned,
              (unsigned long long)full.stats.branches_enqueued);
  const double pct = reduced.stats.naive_branches
                         ? 100.0 * (double)reduced.stats.branches_pruned /
                               (double)reduced.stats.naive_branches
                         : 0.0;
  std::printf("\nreduction: %.1f%% of naive tie-branches pruned (bar: 50%%) -> %s\n", pct,
              pct >= 50.0 ? "PASS" : "FAIL");
  CHECK_GE(reduced.stats.branches_pruned * 2, reduced.stats.naive_branches)
      << "POR acceptance bar missed: " << reduced.Summary();
  CHECK_GT(full.stats.branches_enqueued, reduced.stats.branches_enqueued)
      << "naive search should enqueue strictly more work";
  *total_rate += WallRate(reduced.stats) + WallRate(full.stats);
  *rate_samples += 2;
}

struct MutationRow {
  const char* name;
  uint64_t schedules_to_detect = 0;
  std::string failure_class;
  size_t reproducer_choices = 0;
  bool minimized_replays = false;
};

void ReportMutationDetection(double* total_rate, int* rate_samples) {
  bench::PrintHeader("Mutation self-validation: schedules to detection",
                     "Each seeded protocol mutation must produce a failing schedule within the\n"
                     "default budget; the delta-debugged reproducer must replay to the same\n"
                     "diagnostic.");
  std::vector<MutationRow> rows;

  {
    check::ScopedMutation mutation(check::kFlagBeforeLastStripe);
    sim::ExploreOptions options;
    options.name = "bench-flag-before-last-stripe";
    options.max_schedules = 24;
    sim::Explorer explorer(options);
    sim::ExploreResult result = explorer.Explore(check::CheckedWorkload(StripedFlagBody()));
    CHECK(result.failure_found) << result.Summary();
    rows.push_back({"flag-before-last-stripe", result.stats.schedules_run,
                    result.first_failure.failure_class, result.minimized_trace.choices.size(),
                    result.minimized_report.failure_class == result.first_failure.failure_class});
    *total_rate += WallRate(result.stats);
    ++*rate_samples;
  }

  {
    // Schedule-independent once a mid-transfer drop occurs: sweep fault seeds
    // with one canonical schedule each and count every schedule run.
    check::ScopedMutation mutation(check::kRetryKeepsCursor);
    uint64_t schedules = 0;
    MutationRow row;
    row.name = "retry-keeps-cursor";
    for (uint64_t seed = 1; seed <= 32; ++seed) {
      sim::ExploreOptions options;
      options.name = "bench-retry-keeps-cursor";
      options.max_schedules = 1;
      options.jitter_schedules = 0;
      options.minimize = false;
      sim::Explorer explorer(options);
      sim::ExploreResult result =
          explorer.Explore(check::CheckedWorkload(DroppyDirectWriteBody(seed)));
      schedules += result.stats.schedules_run;
      *total_rate += WallRate(result.stats);
      ++*rate_samples;
      if (result.failure_found) {
        row.schedules_to_detect = schedules;
        row.failure_class = result.first_failure.failure_class;
        row.reproducer_choices = result.failing_trace.choices.size();
        row.minimized_replays = true;  // Canonical schedule is its own reproducer.
        break;
      }
    }
    CHECK(!row.failure_class.empty()) << "no seed in [1, 32] produced a mid-transfer drop";
    rows.push_back(row);
  }

  {
    check::ScopedMutation mutation(check::kPrematureFlagTrust);
    sim::ExploreOptions options;
    options.name = "bench-premature-flag-trust";
    options.max_schedules = 8;
    sim::Explorer explorer(options);
    sim::ExploreResult result =
        explorer.Explore(check::CheckedWorkload(SmallAllReduceBody(4096)));
    CHECK(result.failure_found) << result.Summary();
    rows.push_back({"premature-flag-trust", result.stats.schedules_run,
                    result.first_failure.failure_class, result.minimized_trace.choices.size(),
                    result.minimized_report.failure_class == result.first_failure.failure_class});
    *total_rate += WallRate(result.stats);
    ++*rate_samples;
  }

  {
    check::ScopedMutation mutation(check::kSkipFlagWrite);
    sim::ExploreOptions options;
    options.name = "bench-skip-flag-write";
    options.max_schedules = 4;
    options.jitter_schedules = 0;
    options.minimize = false;  // Every schedule stalls; shrinking buys nothing.
    sim::Explorer explorer(options);
    sim::ExploreResult result =
        explorer.Explore(check::CheckedWorkload(SmallAllReduceBody(1024)));
    CHECK(result.failure_found) << result.Summary();
    rows.push_back({"skip-flag-write", result.stats.schedules_run,
                    result.first_failure.failure_class, result.failing_trace.choices.size(),
                    true});
    *total_rate += WallRate(result.stats);
    ++*rate_samples;
  }

  std::printf("%-26s %12s %-28s %8s %10s\n", "mutation", "schedules", "failure class", "repro",
              "minimized");
  bench::PrintRule();
  for (const MutationRow& row : rows) {
    std::printf("%-26s %12llu %-28s %8zu %10s\n", row.name,
                (unsigned long long)row.schedules_to_detect, row.failure_class.c_str(),
                row.reproducer_choices, row.minimized_replays ? "replays" : "DIVERGED");
    CHECK(row.minimized_replays) << row.name;
  }
  std::printf("\nall %zu seeded mutations detected within budget\n", rows.size());
}

void ReportCleanBaseline(double* total_rate, int* rate_samples) {
  bench::PrintHeader("Unmutated baseline",
                     "The same workloads explore clean without a planted bug — the detection\n"
                     "table above measures the mutations, not checker noise.");
  struct Baseline {
    const char* name;
    check::WorkloadBody body;
  };
  const Baseline baselines[] = {
      {"striped-flag (drop+retry)", StripedFlagBody()},
      {"2-rank all-reduce", SmallAllReduceBody(1024)},
  };
  std::printf("%-28s %10s %10s %10s\n", "workload", "schedules", "decisions", "verdict");
  bench::PrintRule();
  for (const Baseline& baseline : baselines) {
    sim::ExploreOptions options;
    options.name = baseline.name;
    options.max_schedules = 8;
    sim::Explorer explorer(options);
    sim::ExploreResult result = explorer.Explore(check::CheckedWorkload(baseline.body));
    CHECK(!result.failure_found) << result.Summary();
    std::printf("%-28s %10llu %10llu %10s\n", baseline.name,
                (unsigned long long)result.stats.schedules_run,
                (unsigned long long)result.stats.decision_points, "clean");
    *total_rate += WallRate(result.stats);
    ++*rate_samples;
  }
}

void Main() {
  double total_rate = 0.0;
  int rate_samples = 0;
  ReportStateReduction(&total_rate, &rate_samples);
  ReportMutationDetection(&total_rate, &rate_samples);
  ReportCleanBaseline(&total_rate, &rate_samples);
  // Wall-clock throughput is machine-dependent: stderr only, so stdout stays
  // byte-identical across runs for the determinism diff.
  if (rate_samples > 0) {
    std::fprintf(stderr, "[bench_explore] mean throughput: %.0f schedules/sec over %d runs\n",
                 total_rate / rate_samples, rate_samples);
  }
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Main();
  return 0;
}
