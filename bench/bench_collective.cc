// Collective all-reduce sweep: machines x tensor size x mechanism.
//
// Compares the zero-copy RDMA ring all-reduce (static ring buffers, one-sided
// writes, §3.2 placement) against a gRPC-over-TCP staging baseline
// (serialize + transfer + deserialize + staging memcpy per hop), and the ring
// algorithm against a naive gather-at-root reduction. Finishes with an
// end-to-end PS-vs-all-reduce training comparison on FCN-5.
//
// All numbers are virtual-time measurements from the simulated fabric.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/collective/collective.h"
#include "src/models/model_spec.h"
#include "src/net/fabric.h"
#include "src/rdma/verbs.h"
#include "src/sim/simulator.h"

namespace rdmadl {
namespace bench {
namespace {

struct World {
  explicit World(int num_hosts)
      : fabric(&simulator, cost, num_hosts), rdma(&fabric), directory(&rdma) {}

  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric;
  rdma::RdmaFabric rdma;
  device::DeviceDirectory directory;
};

struct OpResult {
  double ms = 0;
  double egress_utilization = 0;  // Mean over hosts, busy / elapsed.
};

// One timed all-reduce of |bytes| on a fresh |n|-host group.
OpResult TimeAllReduce(int n, uint64_t bytes, collective::CollectiveOptions options) {
  World world(n);
  const uint64_t elements = bytes / sizeof(float);
  options.materialize = false;  // Timing only: virtual payload buffers.
  std::vector<int> hosts;
  for (int i = 0; i < n; ++i) hosts.push_back(i);
  auto group_or = collective::CollectiveGroup::Create(&world.directory, hosts,
                                                      elements, options);
  CHECK_OK(group_or.status());
  auto group = std::move(group_or).value();

  // Warm-up op performs the lazy address exchange; not timed.
  Status warm = Internal("");
  group->AllReduce(elements, [&](const Status& s) { warm = s; });
  CHECK_OK(world.simulator.Run());
  CHECK_OK(warm);

  std::vector<int64_t> busy_before(n);
  for (int i = 0; i < n; ++i) {
    busy_before[i] = world.fabric.host(i)->egress().busy_ns_total();
  }
  const int64_t start = world.simulator.Now();
  Status done = Internal("");
  group->AllReduce(elements, [&](const Status& s) { done = s; });
  CHECK_OK(world.simulator.Run());
  CHECK_OK(done);
  const int64_t elapsed = world.simulator.Now() - start;

  OpResult result;
  result.ms = static_cast<double>(elapsed) / 1e6;
  double util = 0;
  for (int i = 0; i < n; ++i) {
    util += static_cast<double>(world.fabric.host(i)->egress().busy_ns_total() -
                                busy_before[i]) /
            elapsed;
  }
  result.egress_utilization = util / n;
  return result;
}

void SweepTransports() {
  PrintHeader("Collective all-reduce: ring over zero-copy RDMA vs TCP staging",
              "Virtual ms per all-reduce (mean egress link utilization in parens).");
  std::printf("%-8s %10s | %12s %18s | %8s\n", "hosts", "tensor", "gRPC-TCP",
              "RDMA zero-copy", "speedup");
  PrintRule();
  const std::vector<uint64_t> sizes = {64ull << 10, 1ull << 20, 16ull << 20,
                                       128ull << 20};
  bool acceptance = true;
  for (int n : {2, 4, 8}) {
    for (uint64_t bytes : sizes) {
      collective::CollectiveOptions tcp;
      tcp.transport = collective::Transport::kTcpStaging;
      collective::CollectiveOptions zc;
      zc.transport = collective::Transport::kRdmaZeroCopy;
      const OpResult staged = TimeAllReduce(n, bytes, tcp);
      const OpResult ring = TimeAllReduce(n, bytes, zc);
      std::printf("%-8d %8.2fMB | %8.3f (%.2f) %12.3f (%.2f) | %7.1fx\n", n,
                  static_cast<double>(bytes) / (1 << 20), staged.ms,
                  staged.egress_utilization, ring.ms, ring.egress_utilization,
                  staged.ms / ring.ms);
      if (n == 8 && bytes >= (1ull << 20) && ring.ms >= staged.ms) {
        acceptance = false;
      }
    }
  }
  PrintRule();
  std::printf("acceptance (zero-copy ring < staging at >=1MB on 8 hosts): %s\n",
              acceptance ? "PASS" : "FAIL");
}

void SweepAlgorithms() {
  PrintHeader("Ablation: ring vs naive gather-at-root (zero-copy RDMA, 8 hosts)",
              "The ring keeps every link busy; the naive reduction serializes "
              "on the root's ingress and CPU.");
  std::printf("%10s | %10s %12s | %8s\n", "tensor", "naive", "ring", "speedup");
  PrintRule();
  for (uint64_t bytes : {1ull << 20, 16ull << 20, 128ull << 20}) {
    collective::CollectiveOptions naive;
    naive.algorithm = collective::Algorithm::kNaiveGather;
    collective::CollectiveOptions ring;
    ring.algorithm = collective::Algorithm::kRing;
    const OpResult gather = TimeAllReduce(8, bytes, naive);
    const OpResult ringed = TimeAllReduce(8, bytes, ring);
    std::printf("%8.2fMB | %10.3f %12.3f | %7.1fx\n",
                static_cast<double>(bytes) / (1 << 20), gather.ms, ringed.ms,
                gather.ms / ringed.ms);
  }
}

void EndToEnd(bool tail) {
  PrintHeader("End-to-end: PS training vs all-reduce training (FCN-5)",
              "Mean virtual step time in ms; all-reduce drops the PS processes "
              "and sums gradients with the ring collective.");
  std::printf("%-8s | %14s %14s", "machines", "PS (zero-copy)", "all-reduce");
  if (tail) std::printf(" | %9s %9s %9s", "PS p50", "PS p99", "PS p999");
  std::printf("\n");
  PrintRule();
  // Tail mode runs enough steps for the per-step histogram to have a tail
  // worth reading; the default keeps the historical 2+3-step measurement so
  // its output stays byte-identical.
  const int steps = tail ? 16 : 3;
  for (int machines : {2, 4}) {
    train::TrainingConfig ps;
    ps.model = models::Fcn5();
    ps.num_machines = machines;
    ps.batch_size = 8;
    ps.mechanism = train::MechanismKind::kRdmaZeroCopy;
    train::TrainingConfig ar = ps;
    ar.mode = train::TrainingMode::kAllReduce;
    const StepResult ps_ms = MeasureConfig(ps, /*warmup=*/2, steps);
    const StepResult ar_ms = MeasureConfig(ar, /*warmup=*/2, steps);
    CHECK(ps_ms.ok()) << ps_ms.error;
    CHECK(ar_ms.ok()) << ar_ms.error;
    std::printf("%-8d | %14.2f %14.2f", machines, ps_ms.step_ms, ar_ms.step_ms);
    if (tail) std::printf(" | %9.2f %9.2f %9.2f", ps_ms.p50_ms, ps_ms.p99_ms, ps_ms.p999_ms);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace rdmadl

int main(int argc, char** argv) {
  bool tail = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--tail") {
      tail = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (expected --tail)\n", argv[i]);
      return 2;
    }
  }
  rdmadl::bench::SweepTransports();
  rdmadl::bench::SweepAlgorithms();
  rdmadl::bench::EndToEnd(tail);
  return 0;
}
