// Regenerates Figure 11: scalability of LSTM, Inception-v3 and VGGNet-16 from
// 1 to 8 servers (mini-batch 32), under gRPC.TCP, gRPC.RDMA and RDMA, plus
// the pure-local single-machine implementation (no communication). Extended
// past the paper's 8-server testbed to 16 and 32 servers so this figure and
// the cluster-scale topology sweep (bench_scale) share one axis.
//
// Paper: LSTM and Inception scale >7x on 8 servers under both RDMA
// mechanisms; VGG reaches 5.2x with our RDMA (>140 % over gRPC.RDMA at every
// scale); with our RDMA all three pass the local implementation at 2 servers,
// and the 8-server speedups over local are 5x / 7.9x / 4.3x.
#include <vector>

#include "bench/bench_util.h"
#include "src/models/model_spec.h"

namespace rdmadl {
namespace {

void Run() {
  bench::PrintHeader("Figure 11 — Scalability (mini-batch 32)",
                     "Aggregate throughput (samples/s) vs number of servers.");
  const models::ModelSpec kModels[] = {models::Lstm(), models::InceptionV3(),
                                       models::Vgg16()};
  const train::MechanismKind kMechs[] = {train::MechanismKind::kGrpcTcp,
                                         train::MechanismKind::kGrpcRdma,
                                         train::MechanismKind::kRdmaZeroCopy};
  constexpr int kBatch = 32;

  for (const models::ModelSpec& model : kModels) {
    // Pure local implementation: one machine, no PS, no communication.
    train::TrainingConfig local;
    local.model = model;
    local.num_machines = 1;
    local.batch_size = kBatch;
    local.local_only = true;
    bench::StepResult local_result = bench::MeasureConfig(local, 1, 2);
    CHECK(local_result.ok()) << local_result.error;
    const double local_sps = 1000.0 / local_result.step_ms * kBatch;

    std::printf("\n--- %s ---\n", model.name.c_str());
    std::printf("%-8s | %12s %12s %12s | %12s\n", "servers", "gRPC.TCP", "gRPC.RDMA", "RDMA",
                "Local");
    bench::PrintRule();
    double rdma_single = 0;
    double rdma_eight = 0;
    // {1..8} reproduces the paper's testbed; 16 and 32 extend the figure onto
    // the same axis as the cluster-scale sweep (bench_scale).
    for (int machines : {1, 2, 4, 8, 16, 32}) {
      double sps[3];
      for (int m = 0; m < 3; ++m) {
        train::TrainingConfig config;
        config.model = model;
        config.num_machines = machines;
        config.batch_size = kBatch;
        config.mechanism = kMechs[m];
        bench::StepResult result = bench::MeasureConfig(config, 2, 2);
        CHECK(result.ok()) << result.error;
        sps[m] = 1000.0 / result.step_ms * kBatch * machines;
      }
      if (machines == 1) rdma_single = sps[2];
      if (machines == 8) rdma_eight = sps[2];
      std::printf("%-8d | %12.1f %12.1f %12.1f | %12.1f\n", machines, sps[0], sps[1], sps[2],
                  local_sps);
    }
    bench::PrintRule();
    std::printf("RDMA speedup on 8 servers: %.1fx vs 1 server, %.1fx vs local\n",
                rdma_eight / rdma_single, rdma_eight / local_sps);
  }
  bench::PrintRule();
  std::printf("Paper: 8-server RDMA speedups vs local are 5x (LSTM), 7.9x (Inception),\n"
              "4.3x (VGG); RDMA beats the local implementation from 2 servers on.\n");
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
