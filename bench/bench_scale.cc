// Cluster-scale sweep (ISSUE 6): hosts x model x topology, far past the
// paper's 8-16 host testbed.
//
// Two phases:
//   * ring all-reduce over a CollectiveGroup (virtual payload memory) at up
//     to 1000 hosts — neighbor-only lanes, so the QP pool keeps total QP
//     count linear in hosts;
//   * one PS training step (colocated worker+PS per machine) at up to 256
//     hosts — the all-to-all pattern that actually pressures the pool's
//     max_queue_pairs cap.
//
// stdout carries only virtual-time results and deterministic counters (the
// determinism gate in scripts/check.sh --scale diffs two runs byte-for-byte);
// wall-clock milliseconds and simulator events/sec go to stderr. --json
// additionally writes machine-readable rows (BENCH_6.json via scripts/
// bench.sh).
//
// Flags:
//   --quick        small sweep (CI-sized)
//   --smoke        single 256-host point per phase (scripts/check.sh --scale)
//   --collectives  all-reduce phase only, with the multi-level algorithm
//                  series (ring vs hierarchical vs kAuto vs in-network) on
//                  the oversubscribed rack fabric (BENCH_7.json)
//   --check[=N]    install RdmaCheck and a seeded chaos injector (latency
//                  spikes + link-down blips; seed N, default 1); any
//                  diagnostic is a hard failure
//   --congestion   bounded queues + ECN + DCQCN on every topology (lossless
//                  pause mode, so no transfer can fail), and the chaos
//                  injector (under --check) additionally configures the
//                  straggler/jitter knob — the ISSUE 8 robustness mode
//   --tail         repeat each timed op and append p50/p99/p999 tail-latency
//                  columns (existing mean columns keep their exact values;
//                  without the flag the output is byte-identical to before)
//   --json=PATH    write JSON rows to PATH
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/rdma_check.h"
#include "src/net/congestion.h"
#include "src/collective/collective.h"
#include "src/device/rdma_device.h"
#include "src/models/model_spec.h"
#include "src/net/fabric.h"
#include "src/net/topology.h"
#include "src/rdma/verbs.h"
#include "src/sim/fault.h"
#include "src/sim/histogram.h"
#include "src/sim/simulator.h"
#include "src/train/ps_training.h"
#include "src/util/logging.h"

namespace rdmadl {
namespace {

struct Flags {
  bool quick = false;
  bool smoke = false;
  bool check = false;
  bool collectives = false;  // All-reduce phase only (BENCH_7 series).
  bool congestion = false;   // Bounded queues + ECN + DCQCN + stragglers.
  bool tail = false;         // Extra reps -> p50/p99/p999 columns.
  uint64_t chaos_seed = 1;
  std::string json_path;
};

// The robustness-mode fabric: bounded queues with early marking, DCQCN
// reaction points, and PFC-style pause on overflow. Pause (not drop) so a
// congested PS step degrades but can never lose a transfer — the sweep's
// completion CHECKs stay meaningful under any seed.
net::CongestionConfig BenchCongestion() {
  net::CongestionConfig cc;
  cc.queue_capacity_bytes = 4ull << 20;
  cc.ecn_threshold_bytes = 512ull << 10;
  cc.pause_on_overflow = true;
  cc.dcqcn = true;
  return cc;
}

struct TopoPoint {
  const char* name;
  net::TopologyConfig config;
};

std::vector<TopoPoint> Topologies() {
  net::TopologyConfig hier;
  hier.hosts_per_rack = 32;
  hier.oversubscription = 4.0;
  return {{"flat", net::TopologyConfig{}}, {"rack32-o4", hier}};
}

// Same rack/spine shape with the ToR/spine reduction engines turned on —
// the fabric Algorithm::kInNetwork (and kAuto, under its size cap) drives.
TopoPoint SwitchReduceTopology() {
  net::TopologyConfig config;
  config.hosts_per_rack = 32;
  config.oversubscription = 4.0;
  config.switch_reduce = true;
  return {"rack32-o4-sr", config};
}

// Latency spikes and short link-down blips: enough chaos to shake event
// ordering and the pool's reconnect path, but nothing that fails a transfer,
// so the sweep must still complete deterministically.
void ConfigureChaos(sim::FaultInjector* injector, uint64_t seed, int hosts,
                    bool stragglers) {
  sim::LinkFaultSpec spec;
  spec.spike_probability = 0.05;
  spec.spike_min_ns = 1'000;
  spec.spike_max_ns = 20'000;
  injector->SetDefaultLinkFault(spec);
  // The straggler knob draws per-host dilations immediately, so it must sit
  // at a fixed point of the configuration sequence for seed stability.
  if (stragglers) {
    sim::StragglerSpec straggle;
    straggle.straggler_probability = 0.2;
    straggle.dilation_min = 1.1;
    straggle.dilation_max = 1.4;
    straggle.jitter_max_ns = 2'000;
    injector->ConfigureStragglers(straggle, hosts);
  }
  injector->SetLinkDown(static_cast<int>(seed % hosts), 50'000, 250'000);
  injector->SetLinkDown(static_cast<int>((seed * 7 + 3) % hosts), 300'000, 600'000);
}

struct ScaleRow {
  std::string phase;
  std::string model;
  std::string topology;
  int hosts = 0;
  double virtual_ms = 0;      // Deterministic (stdout + json).
  int64_t total_qps = 0;      // Total QP contexts across all NICs.
  int64_t max_nic_qps = 0;    // Busiest NIC (must be <= cost.max_queue_pairs).
  int64_t pool_lanes = 0;
  int64_t pool_evictions = 0;
  bool has_tail = false;      // --tail: the percentile columns are live.
  double p50_ms = 0;          // Per-op/per-step virtual tail latencies.
  double p99_ms = 0;
  double p999_ms = 0;
  double wall_ms = 0;         // Nondeterministic (stderr + json only).
  double events_per_sec = 0;
};

int64_t TotalQps(rdma::RdmaFabric* rdma, int hosts) {
  int64_t total = 0;
  for (int h = 0; h < hosts; ++h) total += rdma->nic(h)->num_queue_pairs();
  return total;
}

int64_t MaxNicQps(rdma::RdmaFabric* rdma, int hosts) {
  int64_t max = 0;
  for (int h = 0; h < hosts; ++h) {
    max = std::max<int64_t>(max, rdma->nic(h)->num_queue_pairs());
  }
  return max;
}

void PrintRow(const ScaleRow& row) {
  std::printf("%-9s %-12s %-10s %6d | %12.3f |", row.phase.c_str(), row.model.c_str(),
              row.topology.c_str(), row.hosts, row.virtual_ms);
  if (row.has_tail) {
    std::printf(" %9.3f %9.3f %9.3f |", row.p50_ms, row.p99_ms, row.p999_ms);
  }
  std::printf(" %8lld %8lld %10lld\n", static_cast<long long>(row.total_qps),
              static_cast<long long>(row.pool_lanes),
              static_cast<long long>(row.pool_evictions));
  std::fprintf(stderr, "  [%s %s %s %d] wall %.0f ms, %.3g events/s\n", row.phase.c_str(),
               row.model.c_str(), row.topology.c_str(), row.hosts, row.wall_ms,
               row.events_per_sec);
}

// Fails the whole binary if the checker saw anything.
void RequireClean(check::RdmaCheck* checker, const ScaleRow& row) {
  if (checker == nullptr) return;
  const auto& diags = checker->Finalize();
  if (!diags.empty()) {
    std::fprintf(stderr, "RdmaCheck diagnostics at %s/%s/%s/%d hosts:\n%s\n",
                 row.phase.c_str(), row.model.c_str(), row.topology.c_str(), row.hosts,
                 checker->Report().c_str());
    std::exit(1);
  }
}

ScaleRow RunAllReduce(int hosts, const TopoPoint& topo, uint64_t elements,
                      const Flags& flags,
                      collective::Algorithm algorithm = collective::Algorithm::kRing,
                      const char* series = "ring-4MiB") {
  ScaleRow row;
  row.phase = "allreduce";
  row.model = series;
  row.topology = topo.name;
  row.hosts = hosts;

  // Installed (when checking) before any MR or QP exists.
  std::unique_ptr<check::RdmaCheck> checker;
  if (flags.check) checker = std::make_unique<check::RdmaCheck>();

  sim::Simulator simulator;
  net::CostModel cost;
  net::Fabric fabric(&simulator, cost, hosts, topo.config);
  sim::FaultInjector injector(flags.chaos_seed);
  if (flags.check) {
    ConfigureChaos(&injector, flags.chaos_seed, hosts, flags.congestion);
    fabric.SetFaultInjector(&injector);
  }
  rdma::RdmaFabric rdma(&fabric);
  {
    device::DeviceDirectory directory(&rdma);
    collective::CollectiveOptions options;
    options.algorithm = algorithm;
    options.materialize = false;  // Virtual payload: 1000 ranks stay cheap.
    std::vector<int> host_ids(hosts);
    std::iota(host_ids.begin(), host_ids.end(), 0);
    auto group = collective::CollectiveGroup::Create(&directory, host_ids, elements, options);
    CHECK(group.ok()) << group.status();

    bool done = false;
    Status status = Internal("all-reduce never completed");
    const uint64_t events_before = simulator.events_dispatched();
    const int64_t op_start = simulator.Now();
    const auto wall_start = std::chrono::steady_clock::now();
    (*group)->AllReduce(elements, [&](const Status& s) {
      done = true;
      status = s;
    });
    CHECK_OK(simulator.Run());
    const auto wall_end = std::chrono::steady_clock::now();
    CHECK(done);
    CHECK_OK(status);

    row.virtual_ms = simulator.Now() / 1e6;
    row.total_qps = TotalQps(&rdma, hosts);
    row.max_nic_qps = MaxNicQps(&rdma, hosts);
    row.pool_lanes = directory.qp_pool()->num_lanes();
    row.pool_evictions = static_cast<int64_t>(directory.qp_pool()->stats().evictions);
    const double wall_s =
        std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start)
            .count();
    row.wall_ms = wall_s * 1e3;
    row.events_per_sec =
        wall_s > 0 ? (simulator.events_dispatched() - events_before) / wall_s : 0;

    // Tail mode: repeat the op on the warmed-up group. The mean columns above
    // were already captured from rep 1 alone, so they keep their exact values.
    if (flags.tail) {
      sim::LatencyHistogram tail;
      tail.Record(simulator.Now() - op_start);
      for (int rep = 1; rep < 8; ++rep) {
        const int64_t start = simulator.Now();
        bool rep_done = false;
        Status rep_status = Internal("all-reduce rep never completed");
        (*group)->AllReduce(elements, [&](const Status& s) {
          rep_done = true;
          rep_status = s;
        });
        CHECK_OK(simulator.Run());
        CHECK(rep_done);
        CHECK_OK(rep_status);
        tail.Record(simulator.Now() - start);
      }
      row.has_tail = true;
      row.p50_ms = tail.P50() / 1e6;
      row.p99_ms = tail.P99() / 1e6;
      row.p999_ms = tail.P999() / 1e6;
    }
  }
  // Group and directory are gone: only clean teardown state remains.
  RequireClean(checker.get(), row);
  return row;
}

ScaleRow RunPsStep(int hosts, const TopoPoint& topo, const models::ModelSpec& model,
                   const Flags& flags) {
  ScaleRow row;
  row.phase = "ps-step";
  row.model = model.name;
  row.topology = topo.name;
  row.hosts = hosts;

  std::unique_ptr<check::RdmaCheck> checker;
  if (flags.check) checker = std::make_unique<check::RdmaCheck>();
  {
    train::TrainingConfig config;
    config.model = model;
    config.num_machines = hosts;
    config.batch_size = 32;
    config.topology = topo.config;
    train::TrainingDriver driver(std::move(config));
    Status init = driver.Initialize(/*warmup_steps=*/1);
    CHECK_OK(init);
    sim::FaultInjector injector(flags.chaos_seed);
    if (flags.check) {
      ConfigureChaos(&injector, flags.chaos_seed, hosts, flags.congestion);
      driver.cluster()->fabric()->SetFaultInjector(&injector);
    }

    sim::Simulator* simulator = driver.cluster()->simulator();
    const uint64_t events_before = simulator->events_dispatched();
    const int64_t virtual_before = simulator->Now();
    const auto wall_start = std::chrono::steady_clock::now();
    auto step_ms = driver.MeasureStepTimeMs(/*steps=*/1);
    const auto wall_end = std::chrono::steady_clock::now();
    CHECK(step_ms.ok()) << step_ms.status();

    row.virtual_ms = *step_ms;
    row.total_qps = TotalQps(driver.cluster()->rdma_fabric(), hosts);
    row.max_nic_qps = MaxNicQps(driver.cluster()->rdma_fabric(), hosts);
    row.pool_lanes = driver.cluster()->directory()->qp_pool()->num_lanes();
    row.pool_evictions =
        static_cast<int64_t>(driver.cluster()->directory()->qp_pool()->stats().evictions);
    const double wall_s =
        std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start)
            .count();
    row.wall_ms = wall_s * 1e3;
    row.events_per_sec =
        wall_s > 0 ? (simulator->events_dispatched() - events_before) / wall_s : 0;
    (void)virtual_before;

    // Tail mode: run more steps and read the driver's per-step histogram
    // (which also holds the warm-up and the timed step above — every
    // completed RunStep of this driver's lifetime feeds the tail).
    if (flags.tail) {
      auto extra = driver.MeasureStepTimeMs(/*steps=*/7);
      CHECK(extra.ok()) << extra.status();
      const sim::LatencyHistogram& tail = driver.step_latencies();
      row.has_tail = true;
      row.p50_ms = tail.P50() / 1e6;
      row.p99_ms = tail.P99() / 1e6;
      row.p999_ms = tail.P999() / 1e6;
    }
  }
  RequireClean(checker.get(), row);
  return row;
}

void Run(const Flags& flags) {
  bench::PrintHeader(
      "Cluster scale — hosts x model x topology (ISSUE 6)",
      "Virtual step/op time and QP-pool footprint far past the paper's 8 hosts.\n"
      "Wall-clock events/sec on stderr; stdout is deterministic.");

  struct PsModel {
    models::ModelSpec model;
    int max_hosts;  // VGG's 2.9s virtual steps get wall-heavy past 128.
  };
  std::vector<int> allreduce_hosts = {32, 64, 128, 256, 512, 1000};
  std::vector<int> ps_hosts = {32, 64, 128, 256};
  std::vector<PsModel> ps_models = {{models::Lstm(), 256}, {models::Vgg16(), 128}};
  if (flags.quick) {
    allreduce_hosts = {32, 128};
    ps_hosts = {32};
    ps_models = {{models::Lstm(), 256}};
  }
  if (flags.smoke) {
    allreduce_hosts = {256};
    ps_hosts = {256};
    ps_models = {{models::Lstm(), 256}};
  }

  std::printf("%-9s %-12s %-10s %6s | %12s |", "phase", "model", "topology", "hosts",
              "virtual ms");
  if (flags.tail) std::printf(" %9s %9s %9s |", "p50 ms", "p99 ms", "p999 ms");
  std::printf(" %8s %8s %10s\n", "QPs", "lanes", "evictions");
  bench::PrintRule();

  // The congestion mode turns the queue/ECN/DCQCN knobs on for every fabric
  // in the sweep; without it the configs are all-zero and the fabric is
  // byte-identical to the pre-congestion one.
  std::vector<TopoPoint> topologies = Topologies();
  TopoPoint sr = SwitchReduceTopology();
  if (flags.congestion) {
    for (TopoPoint& topo : topologies) topo.config.congestion = BenchCongestion();
    sr.config.congestion = BenchCongestion();
  }

  bench::JsonEmitter json;
  std::vector<ScaleRow> rows;
  const uint64_t elements = 1u << 20;  // 4 MiB of floats per rank.
  for (const TopoPoint& topo : topologies) {
    for (int hosts : allreduce_hosts) {
      rows.push_back(RunAllReduce(hosts, topo, elements, flags));
      PrintRow(rows.back());
    }
  }
  // Multi-level schedules on the oversubscribed fabric (ISSUE 7): explicit
  // hierarchical, the kAuto selector (ring at one rack, hierarchical past
  // it), and the in-network stage on the switch-reduce fabric. Skipped in
  // --smoke so that output stays byte-stable for the determinism baseline.
  if (!flags.smoke) {
    const TopoPoint& rack = topologies[1];
    for (int hosts : allreduce_hosts) {
      rows.push_back(RunAllReduce(hosts, rack, elements, flags,
                                  collective::Algorithm::kHierarchical, "hier-4MiB"));
      PrintRow(rows.back());
    }
    for (int hosts : allreduce_hosts) {
      rows.push_back(RunAllReduce(hosts, rack, elements, flags,
                                  collective::Algorithm::kAuto, "auto-4MiB"));
      PrintRow(rows.back());
    }
    for (int hosts : allreduce_hosts) {
      rows.push_back(RunAllReduce(hosts, sr, elements, flags,
                                  collective::Algorithm::kAuto, "innet-4MiB"));
      PrintRow(rows.back());
    }
  }
  bench::PrintRule();
  if (!flags.collectives) {
    for (const TopoPoint& topo : topologies) {
      for (const PsModel& ps : ps_models) {
        for (int hosts : ps_hosts) {
          if (hosts > ps.max_hosts) continue;
          rows.push_back(RunPsStep(hosts, topo, ps.model, flags));
          PrintRow(rows.back());
        }
      }
    }
    bench::PrintRule();
  }

  // The sublinearity acceptance. Per-NIC counts always honor the pool cap,
  // which alone bounds the total at cap * hosts — linear, where eager
  // per-peer lanes would be ~hosts^2 * lanes for the PS all-to-all. From 256
  // hosts on the total must also drop below hosts^2 in absolute terms (small
  // clusters are exempt: 32 colocated-PS machines legitimately hold a
  // constant ~hundred QPs each, which only dips under hosts^2 at scale).
  for (const ScaleRow& row : rows) {
    CHECK_LE(row.max_nic_qps, net::CostModel{}.max_queue_pairs)
        << row.phase << " at " << row.hosts << " hosts overflowed a NIC";
    if (row.hosts < 256) continue;
    const long long quadratic = static_cast<long long>(row.hosts) * row.hosts;
    CHECK_LT(row.total_qps, quadratic)
        << row.phase << " at " << row.hosts << " hosts used " << row.total_qps << " QPs";
  }
  std::printf("Per-NIC QP cap %d respected everywhere; totals sublinear in hosts^2.\n",
              net::CostModel{}.max_queue_pairs);

  // Multi-level acceptance (ISSUE 7): on the oversubscribed rack fabric at
  // 256+ hosts the two-level schedule must beat the flat ring, and kAuto
  // must resolve to exactly the hierarchical schedule (identical virtual
  // time — the selector adds no cost).
  if (!flags.smoke) {
    auto virtual_ms_of = [&rows](const char* series, const char* topology,
                                 int hosts) -> const ScaleRow* {
      for (const ScaleRow& row : rows) {
        if (row.model == series && row.topology == topology && row.hosts == hosts) {
          return &row;
        }
      }
      return nullptr;
    };
    bool checked = false;
    for (const ScaleRow& row : rows) {
      if (row.model != std::string("hier-4MiB") || row.hosts < 256) continue;
      const ScaleRow* ring = virtual_ms_of("ring-4MiB", row.topology.c_str(), row.hosts);
      const ScaleRow* self = virtual_ms_of("auto-4MiB", row.topology.c_str(), row.hosts);
      CHECK(ring != nullptr && self != nullptr);
      CHECK_LT(row.virtual_ms, ring->virtual_ms)
          << "hierarchical did not beat the ring at " << row.hosts << " hosts";
      CHECK_EQ(self->virtual_ms, row.virtual_ms)
          << "kAuto diverged from the hierarchical schedule at " << row.hosts << " hosts";
      checked = true;
    }
    if (checked) {
      std::printf("Hierarchical < ring at 256+ hosts on rack32-o4; kAuto matches it.\n");
    }
  }

  for (const ScaleRow& row : rows) {
    json.BeginRow();
    json.Field("phase", row.phase);
    json.Field("model", row.model);
    json.Field("topology", row.topology);
    json.Field("hosts", static_cast<int64_t>(row.hosts));
    json.Field("virtual_ms", row.virtual_ms);
    json.Field("total_qps", row.total_qps);
    json.Field("max_nic_qps", row.max_nic_qps);
    json.Field("pool_lanes", row.pool_lanes);
    json.Field("pool_evictions", row.pool_evictions);
    if (row.has_tail) {
      json.Field("p50_ms", row.p50_ms);
      json.Field("p99_ms", row.p99_ms);
      json.Field("p999_ms", row.p999_ms);
    }
    json.Field("wall_ms", row.wall_ms);
    json.Field("events_per_sec", row.events_per_sec);
    json.EndRow();
  }
  if (!flags.json_path.empty()) {
    std::FILE* f = std::fopen(flags.json_path.c_str(), "w");
    CHECK(f != nullptr) << "cannot write " << flags.json_path;
    json.PrintTo(f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", flags.json_path.c_str());
  }
}

}  // namespace
}  // namespace rdmadl

int main(int argc, char** argv) {
  rdmadl::Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      flags.quick = true;
    } else if (arg == "--smoke") {
      flags.smoke = true;
    } else if (arg == "--collectives") {
      flags.collectives = true;
    } else if (arg == "--congestion") {
      flags.congestion = true;
    } else if (arg == "--tail") {
      flags.tail = true;
    } else if (arg == "--check") {
      flags.check = true;
    } else if (arg.rfind("--check=", 0) == 0) {
      flags.check = true;
      flags.chaos_seed = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  rdmadl::Run(flags);
  return 0;
}
