// Regenerates Table 3: average mini-batch time (ms) with worker tensors in
// GPU memory, for plain RDMA (PCIe staging copies on every transfer) vs
// RDMA+GPUDirect (NIC reads/writes GPU memory directly; §3.5 — GDR edges use
// the dynamic protocol with metadata polled in host memory). 8 workers.
//
// Paper (ms, improvement): AlexNet 178.5->135.2 (32 %), FCN-5 157.0->101.9
// (54 %), VGGNet 690.1->610.4 (13 %), Inception 172.5->171.9 (0.4 %), LSTM
// 84.4->68.1 (24 %), GRU 62.3->52.6 (19 %).
#include "bench/bench_util.h"
#include "src/models/model_spec.h"

namespace rdmadl {
namespace {

void Run() {
  bench::PrintHeader("Table 3 — GPUDirect RDMA (8 workers, batch 32)",
                     "Average mini-batch time (ms): RDMA with PCIe staging vs RDMA+GDR.");
  std::printf("%-14s | %10s %10s %8s | %10s %10s %8s\n", "Benchmark", "RDMA", "RDMA+GDR",
              "improv", "paper", "paper+GDR", "paper%");
  bench::PrintRule();
  struct PaperRow {
    const char* name;
    double rdma, gdr;
  };
  const PaperRow kPaper[] = {{"AlexNet", 178.5, 135.2},  {"Inception-v3", 172.5, 171.9},
                             {"VGGNet-16", 690.1, 610.4}, {"LSTM", 84.4, 68.1},
                             {"GRU", 62.3, 52.6},         {"FCN-5", 157.0, 101.9}};
  for (const models::ModelSpec& model : models::AllBenchmarkModels()) {
    double ms[2];
    for (int gdr = 0; gdr < 2; ++gdr) {
      train::TrainingConfig config;
      config.model = model;
      config.num_machines = 8;
      config.batch_size = 32;
      config.mechanism = train::MechanismKind::kRdmaZeroCopy;
      config.tensors_on_gpu = true;
      config.gpudirect = (gdr == 1);
      bench::StepResult result = bench::MeasureConfig(config, 2, 3);
      CHECK(result.ok()) << result.error;
      ms[gdr] = result.step_ms;
    }
    const PaperRow* paper = nullptr;
    for (const PaperRow& row : kPaper) {
      if (model.name == row.name) paper = &row;
    }
    std::printf("%-14s | %10.1f %10.1f %7.0f%% | %10.1f %10.1f %7.0f%%\n", model.name.c_str(),
                ms[0], ms[1], bench::ImprovementPct(ms[1], ms[0]), paper->rdma, paper->gdr,
                bench::ImprovementPct(paper->gdr, paper->rdma));
  }
  bench::PrintRule();
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
