// Regenerates Figure 12: the sender-side memory-copy overhead — average
// mini-batch time of each benchmark with the zero-copy graph analysis on
// (RDMA.zerocp) vs off (RDMA.cp), 8 servers, mini-batch 8.
//
// Paper: zero-copy brings up to 21 % improvement; the gain is small for
// compute-heavy / small-tensor models such as Inception-v3 and GRU.
#include "bench/bench_util.h"
#include "src/models/model_spec.h"

namespace rdmadl {
namespace {

void Run() {
  bench::PrintHeader("Figure 12 — Sender memory-copy overhead (8 servers, batch 8)",
                     "Average mini-batch time (ms) with and without the zero-copy "
                     "graph-analysis optimization.");
  std::printf("%-14s | %14s %14s | %12s\n", "Benchmark", "RDMA.cp(ms)", "RDMA.zerocp(ms)",
              "improvement");
  bench::PrintRule();
  for (const models::ModelSpec& model : models::AllBenchmarkModels()) {
    double ms[2];
    const train::MechanismKind kinds[] = {train::MechanismKind::kRdmaCp,
                                          train::MechanismKind::kRdmaZeroCopy};
    for (int m = 0; m < 2; ++m) {
      train::TrainingConfig config;
      config.model = model;
      config.num_machines = 8;
      config.batch_size = 8;
      config.mechanism = kinds[m];
      bench::StepResult result = bench::MeasureConfig(config, 2, 3);
      CHECK(result.ok()) << result.error;
      ms[m] = result.step_ms;
    }
    std::printf("%-14s | %14.2f %14.2f | %10.1f%%\n", model.name.c_str(), ms[0], ms[1],
                bench::ImprovementPct(ms[1], ms[0]));
  }
  bench::PrintRule();
  std::printf("Paper: up to 21%% improvement; small gains for Inception-v3 and GRU\n"
              "(compute-bound, many small tensors).\n");
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
