// Wall-clock microbenchmarks of the library's hot components, using
// google-benchmark. These measure the *implementation* (how fast the
// simulator and allocators run on the build machine), complementing the
// paper-reproduction benches which measure *virtual* time.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/net/fabric.h"
#include "src/ops/kernel.h"
#include "src/sim/simulator.h"
#include "src/tensor/arena_allocator.h"
#include "src/tensor/tensor.h"

namespace rdmadl {
namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int64_t counter = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.ScheduleAt(i, [&counter]() { ++counter; });
    }
    benchmark::DoNotOptimize(simulator.Run());
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_ArenaAllocateFree(benchmark::State& state) {
  std::vector<uint8_t> storage(64 << 20);
  tensor::ArenaAllocator arena(storage.data(), storage.size(), "bench");
  const size_t size = state.range(0);
  for (auto _ : state) {
    void* p = arena.Allocate(size);
    benchmark::DoNotOptimize(p);
    arena.Deallocate(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaAllocateFree)->Arg(256)->Arg(64 << 10)->Arg(4 << 20);

void BM_ArenaFragmentationChurn(benchmark::State& state) {
  std::vector<uint8_t> storage(64 << 20);
  tensor::ArenaAllocator arena(storage.data(), storage.size(), "bench");
  sim::Rng rng(11);
  std::vector<void*> live;
  for (auto _ : state) {
    if (live.size() < 256 && (live.empty() || rng.UniformDouble() < 0.6)) {
      void* p = arena.Allocate(64 + rng.Uniform(32 << 10));
      if (p != nullptr) live.push_back(p);
    } else if (!live.empty()) {
      size_t idx = rng.Uniform(live.size());
      arena.Deallocate(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (void* p : live) arena.Deallocate(p);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaFragmentationChurn);

// Wall-clock of the fabric bulk-transfer path: one large transfer is split
// into per-MTU segments, each a scheduled delivery event. This is the bench
// behind the Fabric::Transfer allocation rework — it counts segment events
// processed per second, so per-segment heap churn shows up directly.
void BM_FabricBulkTransfer(benchmark::State& state) {
  const uint64_t bytes = state.range(0);
  net::CostModel cost;
  uint64_t segments = 0;  // Segments of the last transfer (all are identical).
  for (auto _ : state) {
    sim::Simulator simulator;
    net::Fabric fabric(&simulator, cost, 2);
    bool done = false;
    segments = 0;
    fabric.Transfer(0, 1, bytes, net::Plane::kRdma, 0,
                    [&segments](uint64_t, uint64_t) { ++segments; },
                    [&done](const Status& status) { done = status.ok(); });
    benchmark::DoNotOptimize(simulator.Run());
    CHECK(done);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(segments));
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_FabricBulkTransfer)->Arg(1 << 20)->Arg(32 << 20);

void BM_MatMulKernel(benchmark::State& state) {
  ops::RegisterStandardOps();
  const int64_t n = state.range(0);
  graph::Graph graph;
  graph::Node* node = *graph.AddNode("mm", "MatMul", std::vector<graph::Node*>{});
  auto kernel = ops::KernelRegistry::Global()->Create(*node);
  tensor::Tensor a(tensor::CpuAllocator::Get(), tensor::DType::kFloat32,
                   tensor::TensorShape{n, n});
  tensor::Tensor b(tensor::CpuAllocator::Get(), tensor::DType::kFloat32,
                   tensor::TensorShape{n, n});
  ops::ResourceManager resources(1);
  for (auto _ : state) {
    ops::OpKernelContext ctx(node, {a, b}, tensor::CpuAllocator::Get(),
                             ops::ComputeMode::kReal, &resources, nullptr);
    benchmark::DoNotOptimize((*kernel)->Compute(&ctx));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 2);
}
BENCHMARK(BM_MatMulKernel)->Arg(16)->Arg(64);

void BM_GraphTopologicalSort(benchmark::State& state) {
  ops::RegisterStandardOps();
  graph::Graph graph;
  graph::Node* prev = *graph.AddNode("n0", "Const", std::vector<graph::Node*>{});
  for (int i = 1; i < 500; ++i) {
    // Built in two steps: GCC 12's -Wrestrict misfires on the rvalue
    // `const char* + std::string&&` concatenation here.
    std::string name = "n";
    name += std::to_string(i);
    prev = *graph.AddNode(name, "Identity", {prev});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.TopologicalOrder());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_GraphTopologicalSort);

}  // namespace
}  // namespace rdmadl

BENCHMARK_MAIN();
