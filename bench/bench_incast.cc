// Incast collapse and DCQCN recovery (ISSUE 8).
//
// N workers simultaneously RDMA_WRITE one message each into a single
// aggregator host, round after round (the parameter-server gradient-push
// traffic pattern at the instant a step's barrier releases). The aggregator's
// ingress queue is bounded:
//
//   * "drop / CC off"  — RoCE without PFC and nobody reacting to ECN: the
//     overflowing queue tail-drops, the RC transport retries with exponential
//     backoff, and the synchronized retry storms produce the classic incast
//     collapse — a tail orders of magnitude above the median.
//   * "drop / DCQCN"   — same queue, but every QP runs the DCQCN reaction
//     point: ECN marks become CNPs, senders cut their injection rate
//     multiplicatively and recover in stages, so the queue stays mostly
//     below capacity and the tail collapses back toward the median.
//   * "PFC pause"      — lossless alternative: overflow opens pause windows
//     instead of dropping (head-of-line blocking, but no retransmissions).
//
// Per-message latencies go into a deterministic fixed-bucket histogram;
// warm-up rounds are excluded (round-1 thrash is a cold-start artifact, the
// interesting tail is steady state). At >= 256 workers the benchmark
// self-enforces the headline results: CC-off p999 >= 5x p50 (the collapse
// exists) and DCQCN p999 <= half the CC-off p999 (the cure works).
//
// A lane sweep crosses striping with congestion control: each striped lane is
// its own QP with its own DCQCN rate state, so 4 lanes quadruple the initial
// injection burst but also give the control loop 4x the feedback signals.
//
// Flags: --quick (64 workers, fewer rounds, no enforcement), --json=PATH.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/topology.h"
#include "src/rdma/verbs.h"
#include "src/sim/histogram.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace {

// Message each worker pushes per round (one gradient shard).
constexpr uint64_t kMessageBytes = 64ull << 10;
// Aggregator ingress queue: capacity and ECN threshold, in bytes at host-port
// bandwidth. A round's aggregate (workers x message) deliberately exceeds the
// capacity at 256 workers so the drop policy must shed load.
constexpr uint64_t kQueueCapacityBytes = 2ull << 20;
constexpr uint64_t kEcnThresholdBytes = 256ull << 10;
// The RC retry budget is raised well above the stock 7: with capped backoff a
// deep retry schedule is safe, and the CC-off series needs enough attempts to
// eventually drain the collapse instead of erroring QPs mid-bench. The cap is
// one doubling above the stock schedule — deep-retry victims keep separating
// from the pack for one more round before the backoff flattens.
constexpr int kRetryCount = 28;
constexpr int64_t kRetryCapNs = 10'240'000;
// A slower retry clock (stock is 20us): the deep-retry victims' backoff sums
// scale with the base while a message that retries once barely notices, so
// this separates the collapse tail from the median without changing the
// queue physics.
constexpr int64_t kRetryBaseNs = 44'000;

struct SeriesSpec {
  const char* name;
  bool bounded = true;    // False: the unbounded pre-congestion fabric.
  bool pause = false;     // PFC-style pause instead of tail drop.
  bool dcqcn = false;     // Per-QP reaction point on.
};

net::CongestionConfig MakeCongestion(const SeriesSpec& spec) {
  net::CongestionConfig cc;
  if (!spec.bounded) return cc;  // All-zero: byte-identical legacy fabric.
  cc.queue_capacity_bytes = kQueueCapacityBytes;
  cc.ecn_threshold_bytes = kEcnThresholdBytes;
  cc.pause_on_overflow = spec.pause;
  cc.dcqcn = spec.dcqcn;
  // The stock recovery clock (55us) is tuned for steady flows; under a
  // barrier-synchronized retry storm it would restore line rate inside a
  // single backoff gap and the reaction point would never bite. A slower
  // timer keeps throttled QPs throttled across a whole retry wave.
  cc.dcqcn_recovery_period_ns = 500'000;
  return cc;
}

struct SeriesOut {
  sim::LatencyHistogram hist;       // Per-worker message latency, steady state.
  net::CongestionStats cstats;      // Fabric totals (warm-up included).
  uint64_t retransmissions = 0;
  uint64_t cnps = 0;
  uint64_t rate_decreases = 0;
  uint64_t marked_segments = 0;
};

// Runs |warmup + rounds| barrier-synchronized incast rounds of |workers|
// writers (each striping its message over |lanes| QPs) into host 0, and
// returns the steady-state latency histogram plus congestion counters.
SeriesOut RunIncast(int workers, int lanes, const SeriesSpec& spec, int warmup, int rounds) {
  sim::Simulator simulator;
  net::CostModel cost;
  cost.rdma_transport_retry_count = kRetryCount;
  cost.rdma_transport_retry_base_ns = kRetryBaseNs;
  cost.rdma_transport_retry_max_ns = kRetryCapNs;
  net::TopologyConfig topo;
  topo.congestion = MakeCongestion(spec);
  net::Fabric fabric(&simulator, cost, workers + 1, topo);
  rdma::RdmaFabric rdma(&fabric);

  const uint64_t lane_bytes = kMessageBytes / lanes;
  std::vector<uint8_t> dst(static_cast<size_t>(workers) * kMessageBytes);
  std::vector<uint8_t> src(static_cast<size_t>(workers) * kMessageBytes);
  auto dst_mr = rdma.nic(0)->RegisterMemory(dst.data(), dst.size());
  CHECK_OK(dst_mr.status());

  struct Worker {
    rdma::MemoryRegion src_mr;
    std::vector<rdma::QueuePair*> qps;  // One per lane.
    int remaining = 0;                  // Lane completions outstanding.
  };
  std::vector<Worker> state(workers);
  SeriesOut out;
  int64_t round_start = 0;
  bool recording = false;

  rdma::CompletionQueue* agg_cq = rdma.nic(0)->CreateCompletionQueue();
  for (int w = 0; w < workers; ++w) {
    rdma::NicDevice* nic = rdma.nic(w + 1);
    auto mr = nic->RegisterMemory(src.data() + static_cast<size_t>(w) * kMessageBytes,
                                  kMessageBytes);
    CHECK_OK(mr.status());
    state[w].src_mr = *mr;
    rdma::CompletionQueue* cq = nic->CreateCompletionQueue();
    // The handler fires at CQE-generation virtual time: the moment the
    // worker's last lane completes is the message's latency.
    cq->SetCompletionHandler([&, w, cq]() {
      rdma::WorkCompletion wc;
      while (cq->Poll(&wc)) {
        CHECK(wc.status.ok()) << "worker " << w << " write failed (retry budget "
                              << kRetryCount << " exhausted: " << wc.status << ")";
        if (--state[w].remaining == 0 && recording) {
          out.hist.Record(simulator.Now() - round_start);
        }
      }
    });
    for (int l = 0; l < lanes; ++l) {
      rdma::QueuePair* qp = nic->CreateQueuePair(cq, cq);
      rdma::QueuePair* peer = rdma.nic(0)->CreateQueuePair(agg_cq, agg_cq);
      CHECK_OK(qp->Connect(peer));
      state[w].qps.push_back(qp);
    }
  }

  for (int r = 0; r < warmup + rounds; ++r) {
    recording = r >= warmup;
    round_start = simulator.Now();
    for (int w = 0; w < workers; ++w) {
      state[w].remaining = lanes;
      for (int l = 0; l < lanes; ++l) {
        rdma::SendWorkRequest wr;
        wr.wr_id = static_cast<uint64_t>(w) * lanes + l;
        wr.opcode = rdma::Opcode::kWrite;
        wr.local_addr = state[w].src_mr.addr + l * lane_bytes;
        wr.lkey = state[w].src_mr.lkey;
        wr.length = lane_bytes;
        wr.remote_addr = reinterpret_cast<uint64_t>(dst.data()) +
                         static_cast<uint64_t>(w) * kMessageBytes + l * lane_bytes;
        wr.rkey = dst_mr->rkey;
        wr.copy_bytes = false;  // Virtual-memory mode: timing only.
        CHECK_OK(state[w].qps[l]->PostSend(wr));
      }
    }
    CHECK_OK(simulator.Run());  // Barrier: the round drains completely.
    for (int w = 0; w < workers; ++w) {
      CHECK_EQ(state[w].remaining, 0) << "round " << r << " left worker " << w << " incomplete";
    }
  }

  out.cstats = fabric.congestion_totals();
  for (int w = 0; w < workers; ++w) {
    const rdma::NicStats& s = rdma.nic(w + 1)->stats();
    out.retransmissions += s.retransmissions;
    out.cnps += s.cnps_received;
    out.rate_decreases += s.dcqcn_rate_decreases;
    out.marked_segments += s.ecn_marked_segments;
  }
  return out;
}

double Us(int64_t ns) { return static_cast<double>(ns) / 1e3; }

void EmitRow(bench::JsonEmitter* json, const char* section, int workers, int lanes,
             const SeriesSpec& spec, int rounds, const SeriesOut& out) {
  if (json == nullptr) return;
  json->BeginRow();
  json->Field("section", std::string(section));
  json->Field("series", std::string(spec.name));
  json->Field("workers", static_cast<int64_t>(workers));
  json->Field("lanes", static_cast<int64_t>(lanes));
  json->Field("rounds", static_cast<int64_t>(rounds));
  json->Field("message_bytes", static_cast<int64_t>(kMessageBytes));
  json->Field("p50_us", Us(out.hist.P50()));
  json->Field("p99_us", Us(out.hist.P99()));
  json->Field("p999_us", Us(out.hist.P999()));
  json->Field("mean_us", Us(out.hist.mean_ns()));
  json->Field("max_us", Us(out.hist.max_ns()));
  json->Field("overflow_drops", static_cast<int64_t>(out.cstats.overflow_drops));
  json->Field("pause_windows", static_cast<int64_t>(out.cstats.pause_windows));
  json->Field("ecn_marks", static_cast<int64_t>(out.cstats.ecn_marks));
  json->Field("cnps", static_cast<int64_t>(out.cnps));
  json->Field("rate_decreases", static_cast<int64_t>(out.rate_decreases));
  json->Field("retransmissions", static_cast<int64_t>(out.retransmissions));
  json->EndRow();
}

void PrintRow(const char* label, const SeriesOut& out) {
  std::printf("%-14s | %9.1f %9.1f %9.1f | %9.1f | %7llu %7llu %8llu %7llu %8llu\n", label,
              Us(out.hist.P50()), Us(out.hist.P99()), Us(out.hist.P999()),
              Us(out.hist.mean_ns()), static_cast<unsigned long long>(out.cstats.overflow_drops),
              static_cast<unsigned long long>(out.cstats.pause_windows),
              static_cast<unsigned long long>(out.cstats.ecn_marks),
              static_cast<unsigned long long>(out.cnps),
              static_cast<unsigned long long>(out.retransmissions));
}

void RunIncastTable(bool quick, bench::JsonEmitter* json) {
  const SeriesSpec kSeries[] = {
      {"unbounded", /*bounded=*/false},
      {"drop / CC off", true, /*pause=*/false, /*dcqcn=*/false},
      {"drop / DCQCN", true, /*pause=*/false, /*dcqcn=*/true},
      {"PFC pause", true, /*pause=*/true, /*dcqcn=*/false},
  };
  const int kFull[] = {64, 256};
  const int kQuick[] = {64};
  const int* worker_counts = quick ? kQuick : kFull;
  const int num_counts = quick ? 1 : 2;
  const int warmup = quick ? 2 : 4;
  const int rounds = quick ? 8 : 20;

  bench::PrintHeader(
      "Incast — N workers push one message each into one aggregator",
      StrCat("Per-message latency percentiles (us, virtual) over ", rounds,
             " steady-state rounds of ", HumanBytes(kMessageBytes),
             " writes; queue capacity ", HumanBytes(kQueueCapacityBytes), ", ECN at ",
             HumanBytes(kEcnThresholdBytes), "."));
  for (int c = 0; c < num_counts; ++c) {
    const int workers = worker_counts[c];
    std::printf("\n%d workers -> 1 aggregator\n", workers);
    std::printf("%-14s | %9s %9s %9s | %9s | %7s %7s %8s %7s %8s\n", "series", "p50", "p99",
                "p999", "mean", "drops", "pauses", "marks", "cnps", "retrans");
    bench::PrintRule();
    SeriesOut off, on;
    for (const SeriesSpec& spec : kSeries) {
      SeriesOut out = RunIncast(workers, /*lanes=*/1, spec, warmup, rounds);
      PrintRow(spec.name, out);
      EmitRow(json, "incast", workers, 1, spec, rounds, out);
      if (spec.bounded && !spec.pause) (spec.dcqcn ? on : off) = out;
    }
    bench::PrintRule();
    const double recovery = on.hist.P999() > 0
                                ? static_cast<double>(off.hist.P999()) / on.hist.P999()
                                : 0.0;
    std::printf("CC off tail blow-up p999/p50: %.1fx   DCQCN p999 recovery: %.1fx\n",
                off.hist.P50() > 0 ? static_cast<double>(off.hist.P999()) / off.hist.P50() : 0.0,
                recovery);
    if (workers >= 256) {
      // The headline results are self-enforcing at scale: fail loudly if the
      // collapse disappears or the cure stops working.
      CHECK_GE(off.hist.P999(), 5 * off.hist.P50())
          << "incast collapse vanished: CC-off p999 < 5x p50 at " << workers << " workers";
      CHECK_GE(off.hist.P999(), 2 * on.hist.P999())
          << "DCQCN stopped helping: p999 with CC on is more than half of CC off";
    }
  }
}

void RunLaneSweep(bool quick, bench::JsonEmitter* json) {
  const int workers = quick ? 64 : 256;
  const int warmup = quick ? 2 : 4;
  const int rounds = quick ? 8 : 20;
  bench::PrintHeader(
      "Incast x striping — lanes vs congestion control",
      StrCat("Same incast at ", workers, " workers with each message striped over L QPs. "
             "Each lane carries its own DCQCN rate state."));
  std::printf("%-14s | %5s | %9s %9s %9s | %7s %7s %8s\n", "series", "lanes", "p50", "p99",
              "p999", "drops", "cnps", "retrans");
  bench::PrintRule();
  const SeriesSpec kSweep[] = {
      {"drop / CC off", true, false, false},
      {"drop / DCQCN", true, false, true},
  };
  for (const SeriesSpec& spec : kSweep) {
    for (int lanes : {1, 4}) {
      SeriesOut out = RunIncast(workers, lanes, spec, warmup, rounds);
      std::printf("%-14s | %5d | %9.1f %9.1f %9.1f | %7llu %7llu %8llu\n", spec.name, lanes,
                  Us(out.hist.P50()), Us(out.hist.P99()), Us(out.hist.P999()),
                  static_cast<unsigned long long>(out.cstats.overflow_drops),
                  static_cast<unsigned long long>(out.cnps),
                  static_cast<unsigned long long>(out.retransmissions));
      EmitRow(json, "incast_lanes", workers, lanes, spec, rounds, out);
    }
  }
  bench::PrintRule();
}

void Run(bool quick, const std::string& json_path) {
  bench::JsonEmitter json;
  bench::JsonEmitter* emit = json_path.empty() ? nullptr : &json;
  const auto wall_start = std::chrono::steady_clock::now();

  RunIncastTable(quick, emit);
  RunLaneSweep(quick, emit);

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  // Wall clock to stderr only: stdout stays byte-stable for diffing.
  std::fprintf(stderr, "wall-clock: %.0f ms\n", wall_ms);
  if (emit != nullptr) {
    json.BeginRow();
    json.Field("section", std::string("meta"));
    json.Field("quick", static_cast<int64_t>(quick ? 1 : 0));
    json.Field("wall_ms", wall_ms);
    json.EndRow();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    CHECK(f != nullptr) << "cannot open " << json_path;
    json.PrintTo(f);
    std::fclose(f);
  }
}

}  // namespace
}  // namespace rdmadl

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag %s (expected --quick, --json=PATH)\n", argv[i]);
      return 2;
    }
  }
  rdmadl::Run(quick, json_path);
  return 0;
}
