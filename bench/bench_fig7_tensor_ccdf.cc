// Regenerates Figure 7: the complementary cumulative distribution of variable
// tensor sizes across all six benchmarks, plus the capacity statistics the
// paper calls out (>50 % of tensors larger than 10 KB, >20 % larger than
// 1 MB, and tensors over 1 MB holding 96 % of total capacity).
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/models/model_spec.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace {

void Run() {
  bench::PrintHeader("Figure 7 — CCDF of variable tensor sizes",
                     "P(tensor size >= x) over all variable tensors of the six benchmarks.");
  std::vector<uint64_t> sizes;
  uint64_t total_bytes = 0;
  for (const models::ModelSpec& model : models::AllBenchmarkModels()) {
    for (const auto& var : model.AllVariables()) {
      sizes.push_back(var.bytes());
      total_bytes += var.bytes();
    }
  }
  std::sort(sizes.begin(), sizes.end());

  std::printf("%-12s | %14s\n", "size >= x", "fraction");
  bench::PrintRule();
  for (uint64_t threshold = 64; threshold <= (256ull << 20); threshold *= 4) {
    const auto it = std::lower_bound(sizes.begin(), sizes.end(), threshold);
    const double frac = static_cast<double>(sizes.end() - it) / sizes.size();
    std::printf("%-12s | %13.1f%%\n", HumanBytes(threshold).c_str(), frac * 100.0);
  }
  bench::PrintRule();

  auto frac_above = [&](uint64_t threshold) {
    const auto it = std::lower_bound(sizes.begin(), sizes.end(), threshold);
    return static_cast<double>(sizes.end() - it) / sizes.size();
  };
  uint64_t bytes_above_1mb = 0;
  for (uint64_t s : sizes) {
    if (s > (1 << 20)) bytes_above_1mb += s;
  }
  const double capacity_share = static_cast<double>(bytes_above_1mb) / total_bytes;

  std::printf("total variable tensors: %zu across 6 models\n", sizes.size());
  std::printf("tensors > 10 KB: %5.1f%%   (paper: >50%%)\n", frac_above(10 * 1024) * 100);
  std::printf("tensors >  1 MB: %5.1f%%   (paper: >20%%)\n", frac_above(1 << 20) * 100);
  std::printf("capacity held by tensors > 1 MB: %5.1f%%   (paper: 96%%)\n",
              capacity_share * 100);
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
