// Regenerates Figure 8: send/receive micro-benchmark between two servers.
//
// One server holds a tensor of a given size; the other consumes it with a
// lightweight reduce_max operator. We report per-transfer time and effective
// throughput for gRPC.TCP, gRPC.RDMA, RDMA.cp (graph analysis off — sender
// staging copy) and RDMA.zerocp, and the speedups of RDMA.zerocp over each —
// the paper reports 1.7x-61x over gRPC.TCP, 1.3x-14x over gRPC.RDMA and
// 1.2x-1.8x over RDMA.cp, with gRPC.RDMA crashing at the 1 GB point.
#include <memory>

#include "bench/bench_util.h"
#include "src/comm/rpc_mechanism.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"

namespace rdmadl {
namespace {

using graph::Graph;
using graph::Node;
using tensor::TensorShape;

enum class Mech { kGrpcTcp, kGrpcRdma, kRdmaCp, kRdmaZerocp };
const char* kMechNames[] = {"gRPC.TCP", "gRPC.RDMA", "RDMA.cp", "RDMA.zerocp"};

// Returns per-transfer time in microseconds, or -1 on structured failure.
double MeasureTransfer(Mech mech, uint64_t bytes) {
  runtime::ClusterOptions cluster_options;
  cluster_options.num_machines = 2;
  cluster_options.mode = ops::ComputeMode::kSimulated;
  cluster_options.process_defaults.rdma_arena_bytes = 16ull << 30;
  runtime::Cluster cluster(cluster_options);
  CHECK_OK(cluster.AddProcess("ps:0", 0).status());
  CHECK_OK(cluster.AddProcess("worker:0", 1).status());

  Graph graph;
  Node* src = *graph.AddNode("payload", "Variable", std::vector<Node*>{});
  src->SetAttr("shape", TensorShape{static_cast<int64_t>(bytes / 4)});
  src->set_device("ps:0");
  Node* consume = *graph.AddNode("reduce_max", "ReduceMax", {src});
  consume->set_device("worker:0");

  std::unique_ptr<runtime::TransferMechanism> mechanism;
  switch (mech) {
    case Mech::kGrpcTcp:
      mechanism = std::make_unique<comm::RpcMechanism>(&cluster, net::Plane::kTcp);
      break;
    case Mech::kGrpcRdma:
      mechanism = std::make_unique<comm::RpcMechanism>(&cluster, net::Plane::kRdma);
      break;
    case Mech::kRdmaCp: {
      comm::ZeroCopyOptions options;
      options.graph_analysis = false;
      mechanism = std::make_unique<comm::ZeroCopyRdmaMechanism>(&cluster, options);
      break;
    }
    case Mech::kRdmaZerocp:
      mechanism =
          std::make_unique<comm::ZeroCopyRdmaMechanism>(&cluster, comm::ZeroCopyOptions{});
      break;
  }

  runtime::DistributedSession session(&cluster, mechanism.get(), &graph,
                                      runtime::SessionOptions{});
  CHECK_OK(session.Setup());
  // Warm-up (allocation-tracing step for the analysis-enabled mechanism).
  if (!session.RunStep().ok()) return -1;
  constexpr int kSteps = 5;
  const int64_t start = cluster.simulator()->Now();
  for (int i = 0; i < kSteps; ++i) {
    if (!session.RunStep().ok()) return -1;
  }
  return static_cast<double>(cluster.simulator()->Now() - start) / kSteps / 1e3;
}

void Run() {
  bench::PrintHeader("Figure 8 — Tensor transfer micro-benchmark (2 servers)",
                     "Per-transfer latency (us) and speedup of RDMA.zerocp over each "
                     "alternative, vs message size.");
  std::printf("%-9s | %12s %12s %12s %12s | %8s %8s %8s\n", "size", "gRPC.TCP", "gRPC.RDMA",
              "RDMA.cp", "RDMA.zerocp", "x TCP", "x gRPC-R", "x cp");
  bench::PrintRule();
  const uint64_t kSizes[] = {4ull << 10,  64ull << 10,  512ull << 10, 4ull << 20,
                             32ull << 20, 256ull << 20, 1ull << 30};
  for (uint64_t bytes : kSizes) {
    double us[4];
    for (int m = 0; m < 4; ++m) {
      us[m] = MeasureTransfer(static_cast<Mech>(m), bytes);
    }
    auto cell = [](double v) {
      static char buf[4][32];
      static int idx = 0;
      char* out = buf[idx = (idx + 1) % 4];
      if (v < 0) {
        std::snprintf(out, 32, "%12s", "CRASH");
      } else {
        std::snprintf(out, 32, "%12.1f", v);
      }
      return out;
    };
    auto ratio = [&](int m) {
      static char buf[3][16];
      static int idx = 0;
      char* out = buf[idx = (idx + 1) % 3];
      if (us[m] < 0) {
        std::snprintf(out, 16, "%8s", "-");
      } else {
        std::snprintf(out, 16, "%7.1fx", us[m] / us[3]);
      }
      return out;
    };
    std::printf("%-9s | %s %s %s %s | %s %s %s\n", HumanBytes(bytes).c_str(), cell(us[0]),
                cell(us[1]), cell(us[2]), cell(us[3]), ratio(0), ratio(1), ratio(2));
  }
  bench::PrintRule();
  std::printf("Paper: RDMA.zerocp is 1.7x-61x over gRPC.TCP, 1.3x-14x over gRPC.RDMA,\n"
              "1.2x-1.8x over RDMA.cp; gRPC.RDMA crashes at 1 GB (missing point).\n");
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
