// Regenerates Figure 8: send/receive micro-benchmark between two servers.
//
// One server holds a tensor of a given size; the other consumes it with a
// lightweight reduce_max operator. We report per-transfer time and effective
// throughput for gRPC.TCP, gRPC.RDMA, RDMA.cp (graph analysis off — sender
// staging copy) and RDMA.zerocp, and the speedups of RDMA.zerocp over each —
// the paper reports 1.7x-61x over gRPC.TCP, 1.3x-14x over gRPC.RDMA and
// 1.2x-1.8x over RDMA.cp, with gRPC.RDMA crashing at the 1 GB point.
//
// Transfer-engine sweeps (ISSUE 5), enabled with --sweep:
//   * lane striping: large-tensor throughput vs QP lane count under a
//     per-QP WQE-engine ceiling (cost.rdma_qp_engine_bytes_per_sec);
//   * small-tensor coalescing: many-small-tensor step time with doorbell
//     batching on vs off;
//   * MR registration cache: dynamic-protocol step time and cache hit rate
//     with the cache on vs the staging baseline.
//
// Flags: --quick (small size set, fewer steps — CI smoke config), --sweep
// (adds the engine sweeps), --json=PATH (machine-readable rows; wall-clock
// timings go only into the JSON/stderr so stdout stays deterministic).
#include <chrono>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/comm/rpc_mechanism.h"
#include "src/comm/zerocopy_mechanism.h"
#include "src/runtime/session.h"
#include "src/util/strings.h"

namespace rdmadl {
namespace {

using graph::Graph;
using graph::Node;
using tensor::TensorShape;

enum class Mech { kGrpcTcp, kGrpcRdma, kRdmaCp, kRdmaZerocp };

struct MeasureSpec {
  uint64_t bytes = 0;
  int num_tensors = 1;  // Parallel same-size edges (coalescing sweep).
  int steps = 5;
  comm::ZeroCopyOptions zerocopy;        // For the zero-copy mechanisms.
  net::CostModel cost;                   // Cluster-wide cost model.
  // Extra measure steps before the timed window whose stats are excluded
  // (beyond the single allocation-tracing warm-up step).
  int extra_warmup_steps = 0;
};

struct MeasureOut {
  double us_per_step = -1.0;  // Virtual time; negative on structured failure.
  comm::ZeroCopyStats stats;         // Totals at the end of the run.
  comm::ZeroCopyStats warmup_stats;  // Totals when the timed window began.
  bool ok() const { return us_per_step >= 0; }
};

// Runs |spec.steps| steps of a 2-host PS-shaped transfer and reports the mean
// virtual per-step time plus the mechanism's counters.
MeasureOut MeasureTransfer(Mech mech, const MeasureSpec& spec) {
  runtime::ClusterOptions cluster_options;
  cluster_options.num_machines = 2;
  cluster_options.mode = ops::ComputeMode::kSimulated;
  cluster_options.cost = spec.cost;
  cluster_options.process_defaults.rdma_arena_bytes = 16ull << 30;
  runtime::Cluster cluster(cluster_options);
  CHECK_OK(cluster.AddProcess("ps:0", 0).status());
  CHECK_OK(cluster.AddProcess("worker:0", 1).status());

  Graph graph;
  for (int t = 0; t < spec.num_tensors; ++t) {
    const std::string name = "payload" + std::to_string(t);
    Node* src = *graph.AddNode(name, "Variable", std::vector<Node*>{});
    src->SetAttr("shape", TensorShape{static_cast<int64_t>(spec.bytes / 4)});
    src->set_device("ps:0");
    Node* consume = *graph.AddNode("reduce_max" + std::to_string(t), "ReduceMax", {src});
    consume->set_device("worker:0");
  }

  std::unique_ptr<runtime::TransferMechanism> mechanism;
  comm::ZeroCopyRdmaMechanism* zerocp = nullptr;
  switch (mech) {
    case Mech::kGrpcTcp:
      mechanism = std::make_unique<comm::RpcMechanism>(&cluster, net::Plane::kTcp);
      break;
    case Mech::kGrpcRdma:
      mechanism = std::make_unique<comm::RpcMechanism>(&cluster, net::Plane::kRdma);
      break;
    case Mech::kRdmaCp: {
      comm::ZeroCopyOptions options = spec.zerocopy;
      options.graph_analysis = false;
      auto z = std::make_unique<comm::ZeroCopyRdmaMechanism>(&cluster, options);
      zerocp = z.get();
      mechanism = std::move(z);
      break;
    }
    case Mech::kRdmaZerocp: {
      auto z = std::make_unique<comm::ZeroCopyRdmaMechanism>(&cluster, spec.zerocopy);
      zerocp = z.get();
      mechanism = std::move(z);
      break;
    }
  }

  runtime::DistributedSession session(&cluster, mechanism.get(), &graph,
                                      runtime::SessionOptions{});
  CHECK_OK(session.Setup());
  MeasureOut out;
  // Warm-up (allocation-tracing step for the analysis-enabled mechanism).
  if (!session.RunStep().ok()) return out;
  for (int i = 0; i < spec.extra_warmup_steps; ++i) {
    if (!session.RunStep().ok()) return out;
  }
  if (zerocp != nullptr) out.warmup_stats = zerocp->stats();
  const int64_t start = cluster.simulator()->Now();
  for (int i = 0; i < spec.steps; ++i) {
    if (!session.RunStep().ok()) return out;
  }
  out.us_per_step =
      static_cast<double>(cluster.simulator()->Now() - start) / spec.steps / 1e3;
  if (zerocp != nullptr) out.stats = zerocp->stats();
  return out;
}

double ThroughputGBps(uint64_t bytes, double us) {
  return us > 0 ? static_cast<double>(bytes) / (us * 1e3) : 0.0;
}

// ---------------------------------------------------------------------------
// The Figure 8 table.

void RunFig8(bool quick, bench::JsonEmitter* json) {
  const char* kMechNames[] = {"gRPC.TCP", "gRPC.RDMA", "RDMA.cp", "RDMA.zerocp"};
  bench::PrintHeader("Figure 8 — Tensor transfer micro-benchmark (2 servers)",
                     "Per-transfer latency (us) and speedup of RDMA.zerocp over each "
                     "alternative, vs message size.");
  std::printf("%-9s | %12s %12s %12s %12s | %8s %8s %8s\n", "size", "gRPC.TCP", "gRPC.RDMA",
              "RDMA.cp", "RDMA.zerocp", "x TCP", "x gRPC-R", "x cp");
  bench::PrintRule();
  const uint64_t kFull[] = {4ull << 10,  64ull << 10,  512ull << 10, 4ull << 20,
                            32ull << 20, 256ull << 20, 1ull << 30};
  const uint64_t kQuick[] = {4ull << 10, 512ull << 10, 8ull << 20};
  const uint64_t* sizes = quick ? kQuick : kFull;
  const int num_sizes = quick ? 3 : 7;
  for (int s = 0; s < num_sizes; ++s) {
    const uint64_t bytes = sizes[s];
    double us[4];
    for (int m = 0; m < 4; ++m) {
      MeasureSpec spec;
      spec.bytes = bytes;
      spec.steps = quick ? 3 : 5;
      us[m] = MeasureTransfer(static_cast<Mech>(m), spec).us_per_step;
      if (json != nullptr) {
        json->BeginRow();
        json->Field("section", std::string("fig8"));
        json->Field("mechanism", std::string(kMechNames[m]));
        json->Field("bytes", static_cast<int64_t>(bytes));
        json->Field("virtual_us_per_step", us[m]);
        json->Field("virtual_gbps", ThroughputGBps(bytes, us[m]));
        json->EndRow();
      }
    }
    auto cell = [](double v) {
      static char buf[4][32];
      static int idx = 0;
      char* out = buf[idx = (idx + 1) % 4];
      if (v < 0) {
        std::snprintf(out, 32, "%12s", "CRASH");
      } else {
        std::snprintf(out, 32, "%12.1f", v);
      }
      return out;
    };
    auto ratio = [&](int m) {
      static char buf[3][16];
      static int idx = 0;
      char* out = buf[idx = (idx + 1) % 3];
      if (us[m] < 0) {
        std::snprintf(out, 16, "%8s", "-");
      } else {
        std::snprintf(out, 16, "%7.1fx", us[m] / us[3]);
      }
      return out;
    };
    std::printf("%-9s | %s %s %s %s | %s %s %s\n", HumanBytes(bytes).c_str(), cell(us[0]),
                cell(us[1]), cell(us[2]), cell(us[3]), ratio(0), ratio(1), ratio(2));
  }
  bench::PrintRule();
  std::printf("Paper: RDMA.zerocp is 1.7x-61x over gRPC.TCP, 1.3x-14x over gRPC.RDMA,\n"
              "1.2x-1.8x over RDMA.cp; gRPC.RDMA crashes at 1 GB (missing point).\n");
}

// ---------------------------------------------------------------------------
// Sweep 1: multi-QP lane striping. A per-QP WQE-engine ceiling makes the
// single-QP initiation cost visible; striping across lanes overlaps it.

void SweepLanes(bool quick, bench::JsonEmitter* json) {
  bench::PrintHeader("Transfer engine — QP lane striping",
                     "Large-tensor RDMA.zerocp throughput vs stripe lanes, with a 12 GB/s "
                     "per-QP WQE-engine ceiling (virtual time).");
  std::printf("%-9s | %10s %10s %10s | %s\n", "size", "1 lane", "2 lanes", "4 lanes",
              "4-lane speedup");
  bench::PrintRule();
  const uint64_t kFull[] = {8ull << 20, 32ull << 20, 128ull << 20};
  const uint64_t kQuick[] = {8ull << 20};
  const uint64_t* sizes = quick ? kQuick : kFull;
  const int num_sizes = quick ? 1 : 3;
  for (int s = 0; s < num_sizes; ++s) {
    const uint64_t bytes = sizes[s];
    double gbps[3] = {0, 0, 0};
    const int lane_counts[3] = {1, 2, 4};
    for (int l = 0; l < 3; ++l) {
      MeasureSpec spec;
      spec.bytes = bytes;
      spec.steps = quick ? 2 : 4;
      spec.cost.rdma_qp_engine_bytes_per_sec = 12e9;
      spec.zerocopy.engine.enable_striping = lane_counts[l] > 1;
      spec.zerocopy.engine.stripe_lanes = lane_counts[l];
      MeasureOut out = MeasureTransfer(Mech::kRdmaZerocp, spec);
      gbps[l] = ThroughputGBps(bytes, out.us_per_step);
      if (json != nullptr) {
        json->BeginRow();
        json->Field("section", std::string("lanes"));
        json->Field("bytes", static_cast<int64_t>(bytes));
        json->Field("lanes", static_cast<int64_t>(lane_counts[l]));
        json->Field("virtual_us_per_step", out.us_per_step);
        json->Field("virtual_gbps", gbps[l]);
        json->Field("striped_sends", out.stats.striped_sends);
        json->EndRow();
      }
    }
    std::printf("%-9s | %8.2f GB/s %6.2f GB/s %6.2f GB/s | %13.2fx\n",
                HumanBytes(bytes).c_str(), gbps[0], gbps[1], gbps[2],
                gbps[0] > 0 ? gbps[2] / gbps[0] : 0.0);
  }
  bench::PrintRule();
}

// ---------------------------------------------------------------------------
// Sweep 2: small-tensor coalescing. Many small same-step tensors to one peer
// either each pay the per-message posting cost or share one doorbell chain.

void SweepCoalescing(bool quick, bench::JsonEmitter* json) {
  bench::PrintHeader("Transfer engine — small-tensor coalescing",
                     "Step time for N small tensors ps->worker, doorbell batching "
                     "off vs on (virtual time).");
  std::printf("%-16s | %12s %12s | %s\n", "tensors x size", "coalesce off", "coalesce on",
              "speedup");
  bench::PrintRule();
  struct Shape {
    int tensors;
    uint64_t bytes;
  };
  const Shape kFull[] = {{16, 1024}, {32, 4096}, {64, 4096}};
  const Shape kQuick[] = {{32, 4096}};
  const Shape* shapes = quick ? kQuick : kFull;
  const int num_shapes = quick ? 1 : 3;
  for (int s = 0; s < num_shapes; ++s) {
    double us[2] = {0, 0};
    int64_t batches = 0;
    for (int on = 0; on < 2; ++on) {
      MeasureSpec spec;
      spec.bytes = shapes[s].bytes;
      spec.num_tensors = shapes[s].tensors;
      spec.steps = quick ? 3 : 5;
      spec.zerocopy.engine.enable_coalescing = on == 1;
      MeasureOut out = MeasureTransfer(Mech::kRdmaZerocp, spec);
      us[on] = out.us_per_step;
      if (on == 1) batches = out.stats.coalesced_sends;
      if (json != nullptr) {
        json->BeginRow();
        json->Field("section", std::string("coalescing"));
        json->Field("tensors", static_cast<int64_t>(shapes[s].tensors));
        json->Field("bytes", static_cast<int64_t>(shapes[s].bytes));
        json->Field("coalescing", static_cast<int64_t>(on));
        json->Field("virtual_us_per_step", us[on]);
        json->Field("coalesced_sends", out.stats.coalesced_sends);
        json->EndRow();
      }
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%3d x %s", shapes[s].tensors,
                  HumanBytes(shapes[s].bytes).c_str());
    std::printf("%-16s | %10.1fus %10.1fus | %6.2fx  (%lld coalesced sends)\n", label, us[0],
                us[1], us[1] > 0 ? us[0] / us[1] : 0.0, static_cast<long long>(batches));
  }
  bench::PrintRule();
}

// ---------------------------------------------------------------------------
// Sweep 3: MR registration cache. Dynamic-protocol sends of unregistered
// buffers either stage through the arena every step (RDMA.cp baseline) or
// register once through the cache and go zero-copy from then on.

void SweepMrCache(bool quick, bench::JsonEmitter* json) {
  bench::PrintHeader("Transfer engine — MR registration cache",
                     "Dynamic-protocol step time, staging baseline vs extent cache; "
                     "hit rate counted after step 1 (virtual time).");
  std::printf("%-9s | %12s %12s | %8s | %s\n", "size", "staging", "mr cache", "speedup",
              "hit rate (steps 2+)");
  bench::PrintRule();
  const uint64_t kFull[] = {256ull << 10, 1ull << 20, 8ull << 20};
  const uint64_t kQuick[] = {1ull << 20};
  const uint64_t* sizes = quick ? kQuick : kFull;
  const int num_sizes = quick ? 1 : 3;
  for (int s = 0; s < num_sizes; ++s) {
    const uint64_t bytes = sizes[s];
    double us[2] = {0, 0};
    double hit_rate = 0.0;
    for (int on = 0; on < 2; ++on) {
      MeasureSpec spec;
      spec.bytes = bytes;
      spec.steps = quick ? 8 : 15;
      spec.extra_warmup_steps = 1;  // Hit rate is measured from step 2 on.
      spec.zerocopy.force_dynamic = true;
      spec.zerocopy.use_mr_cache = on == 1;
      MeasureOut out = MeasureTransfer(Mech::kRdmaCp, spec);
      us[on] = out.us_per_step;
      if (on == 1) {
        const int64_t hits = out.stats.mr_cache_hits - out.warmup_stats.mr_cache_hits;
        const int64_t misses = out.stats.mr_cache_misses - out.warmup_stats.mr_cache_misses;
        hit_rate = hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0.0;
      }
      if (json != nullptr) {
        json->BeginRow();
        json->Field("section", std::string("mr_cache"));
        json->Field("bytes", static_cast<int64_t>(bytes));
        json->Field("mr_cache", static_cast<int64_t>(on));
        json->Field("virtual_us_per_step", us[on]);
        json->Field("mr_cache_hits", out.stats.mr_cache_hits);
        json->Field("mr_cache_misses", out.stats.mr_cache_misses);
        if (on == 1) json->Field("hit_rate_after_step1", hit_rate);
        json->EndRow();
      }
    }
    std::printf("%-9s | %10.1fus %10.1fus | %7.2fx | %17.1f%%\n", HumanBytes(bytes).c_str(),
                us[0], us[1], us[1] > 0 ? us[0] / us[1] : 0.0, hit_rate * 100.0);
  }
  bench::PrintRule();
}

void Run(bool quick, bool sweep, const std::string& json_path) {
  bench::JsonEmitter json;
  bench::JsonEmitter* emit = json_path.empty() ? nullptr : &json;
  const auto wall_start = std::chrono::steady_clock::now();

  RunFig8(quick, emit);
  if (sweep) {
    SweepLanes(quick, emit);
    SweepCoalescing(quick, emit);
    SweepMrCache(quick, emit);
  }

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  // Wall-clock goes to stderr and the JSON only: stdout must be byte-stable
  // across runs (scripts/check.sh --bench-smoke diffs it).
  std::fprintf(stderr, "wall-clock: %.0f ms\n", wall_ms);
  if (emit != nullptr) {
    json.BeginRow();
    json.Field("section", std::string("meta"));
    json.Field("quick", static_cast<int64_t>(quick ? 1 : 0));
    json.Field("sweep", static_cast<int64_t>(sweep ? 1 : 0));
    json.Field("wall_ms", wall_ms);
    json.EndRow();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    CHECK(f != nullptr) << "cannot open " << json_path;
    json.PrintTo(f);
    std::fclose(f);
  }
}

}  // namespace
}  // namespace rdmadl

int main(int argc, char** argv) {
  bool quick = false;
  bool sweep = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag %s (expected --quick, --sweep, --json=PATH)\n",
                   argv[i]);
      return 2;
    }
  }
  rdmadl::Run(quick, sweep, json_path);
  return 0;
}
