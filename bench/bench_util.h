// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure of the paper: it prints the
// same rows/series the paper reports (virtual-time measurements from the
// simulated cluster) plus a paper-vs-measured comparison where the paper
// states a number. See EXPERIMENTS.md for the collected results.
#ifndef RDMADL_BENCH_BENCH_UTIL_H_
#define RDMADL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/train/ps_training.h"
#include "src/util/logging.h"

namespace rdmadl {
namespace bench {

inline void PrintHeader(const std::string& title, const std::string& description) {
  std::printf("\n=============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("=============================================================================\n");
}

inline void PrintRule() {
  std::printf("-----------------------------------------------------------------------------\n");
}

// Runs one PS-training configuration and returns the mean virtual step time
// in ms (negative on structured failure, e.g. the gRPC.RDMA >1 GB crash).
struct StepResult {
  double step_ms = -1.0;
  std::string error;
  bool ok() const { return step_ms >= 0; }
};

inline StepResult MeasureConfig(train::TrainingConfig config, int warmup = 2, int steps = 3) {
  train::TrainingDriver driver(std::move(config));
  Status init = driver.Initialize(warmup);
  if (!init.ok()) {
    return StepResult{-1.0, init.ToString()};
  }
  auto ms = driver.MeasureStepTimeMs(steps);
  if (!ms.ok()) {
    return StepResult{-1.0, ms.status().ToString()};
  }
  return StepResult{*ms, ""};
}

// Formats a throughput improvement "A over B" as the paper does (percent).
inline double ImprovementPct(double fast_ms, double slow_ms) {
  return (slow_ms / fast_ms - 1.0) * 100.0;
}

}  // namespace bench
}  // namespace rdmadl

#endif  // RDMADL_BENCH_BENCH_UTIL_H_
