// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure of the paper: it prints the
// same rows/series the paper reports (virtual-time measurements from the
// simulated cluster) plus a paper-vs-measured comparison where the paper
// states a number. See EXPERIMENTS.md for the collected results.
#ifndef RDMADL_BENCH_BENCH_UTIL_H_
#define RDMADL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/train/ps_training.h"
#include "src/util/logging.h"

namespace rdmadl {
namespace bench {

inline void PrintHeader(const std::string& title, const std::string& description) {
  std::printf("\n=============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("=============================================================================\n");
}

inline void PrintRule() {
  std::printf("-----------------------------------------------------------------------------\n");
}

// Runs one PS-training configuration and returns the mean virtual step time
// in ms (negative on structured failure, e.g. the gRPC.RDMA >1 GB crash).
struct StepResult {
  double step_ms = -1.0;
  std::string error;
  // Tail of the driver's per-step latency histogram (every completed step of
  // the run, warm-up included) — meaningful once steps is large enough for a
  // tail to exist; the mean above is unaffected by reading them.
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  bool ok() const { return step_ms >= 0; }
};

inline StepResult MeasureConfig(train::TrainingConfig config, int warmup = 2, int steps = 3) {
  train::TrainingDriver driver(std::move(config));
  Status init = driver.Initialize(warmup);
  if (!init.ok()) {
    return StepResult{-1.0, init.ToString()};
  }
  auto ms = driver.MeasureStepTimeMs(steps);
  if (!ms.ok()) {
    return StepResult{-1.0, ms.status().ToString()};
  }
  StepResult result{*ms, ""};
  result.p50_ms = driver.step_latencies().P50() / 1e6;
  result.p99_ms = driver.step_latencies().P99() / 1e6;
  result.p999_ms = driver.step_latencies().P999() / 1e6;
  return result;
}

// Formats a throughput improvement "A over B" as the paper does (percent).
inline double ImprovementPct(double fast_ms, double slow_ms) {
  return (slow_ms / fast_ms - 1.0) * 100.0;
}

// Minimal machine-readable output: collects flat rows of named fields and
// renders them as a JSON array, so sweep results (e.g. the MTTR curves of
// bench_recovery) can be piped into a plotting script without scraping the
// human-readable tables.
class JsonEmitter {
 public:
  void BeginRow() { fields_.clear(); }
  void Field(const std::string& name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.push_back("\"" + name + "\": " + buf);
  }
  void Field(const std::string& name, int64_t value) {
    fields_.push_back("\"" + name + "\": " + std::to_string(value));
  }
  void Field(const std::string& name, const std::string& value) {
    std::string escaped;
    for (char c : value) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    fields_.push_back("\"" + name + "\": \"" + escaped + "\"");
  }
  void EndRow() {
    std::string row = "  {";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) row += ", ";
      row += fields_[i];
    }
    row += "}";
    rows_.push_back(std::move(row));
  }
  std::string Dump() const {
    std::string out = "[\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += rows_[i];
      out += i + 1 < rows_.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
  }
  void PrintTo(std::FILE* f) const { std::fputs(Dump().c_str(), f); }

 private:
  std::vector<std::string> fields_;
  std::vector<std::string> rows_;
};

}  // namespace bench
}  // namespace rdmadl

#endif  // RDMADL_BENCH_BENCH_UTIL_H_
