// Regenerates Table 2: deep learning benchmark characteristics — model size,
// number of variable tensors, and single-server per-sample computation time.
//
// Sizes and variable counts come from the constructed model specs (calibrated
// layer dimensions); computation time is measured by running the model on one
// simulated machine in local mode at batch 1 and subtracting nothing — the
// measured value includes the same op-dispatch overheads a real runtime pays.
#include "bench/bench_util.h"
#include "src/models/model_spec.h"

namespace rdmadl {
namespace {

void Run() {
  bench::PrintHeader(
      "Table 2 — Deep learning benchmarks",
      "Model size (MB), variable tensor count, per-sample computation time (ms).");
  std::printf("%-14s | %10s %10s | %6s %6s | %12s %12s\n", "Benchmark", "size(MB)",
              "paper(MB)", "#vars", "paper", "compute(ms)", "paper(ms)");
  bench::PrintRule();
  for (const models::ModelSpec& model : models::AllBenchmarkModels()) {
    train::TrainingConfig config;
    config.model = model;
    config.num_machines = 1;
    config.batch_size = 1;
    config.local_only = true;
    bench::StepResult result = bench::MeasureConfig(config, /*warmup=*/1, /*steps=*/3);
    CHECK(result.ok()) << result.error;
    std::printf("%-14s | %10.2f %10.2f | %6d %6d | %12.2f %12.2f\n", model.name.c_str(),
                model.SizeMb(), model.table_size_mb, model.NumVariables(),
                model.table_num_vars, result.step_ms, model.per_sample_time_ms);
  }
  bench::PrintRule();
  std::printf("Note: LSTM/GRU configured with hidden size 1024 (step size 80 folded into the\n"
              "per-sample cost); FCN-5 has 3 hidden layers of width 4096 (see DESIGN.md).\n");
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
