// Elastic recovery MTTR study: how fast does training get back to useful
// work after a fail-stop crash, as a function of the checkpoint interval and
// the cluster size?
//
// For every (cluster size, checkpoint interval) point, one worker fail-stops
// mid-run and the elastic driver detects the death through missed leases,
// reconfigures over the survivors, restores the last checkpoint and finishes
// the run. Reported per point (all virtual time):
//
//   * detection latency — injected crash until the membership service
//     confirms the death (bounded by the lease parameters, independent of
//     the checkpoint interval);
//   * recovery time — confirmation until training resumes (channel recovery,
//     session rebuild, ring/shard reconfiguration, checkpoint restore);
//   * steps rolled back — completed work repeated because it postdated the
//     last checkpoint; this is the term the checkpoint interval trades
//     against snapshot overhead;
//   * run stretch — elapsed virtual time versus the same run without the
//     crash.
//
// The table is printed human-readable; the same rows are emitted as JSON at
// the end for plotting.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/models/model_spec.h"
#include "src/sim/fault.h"
#include "src/train/ps_training.h"

namespace rdmadl {
namespace bench {
namespace {

struct RecoveryPoint {
  int machines = 0;
  int checkpoint_interval = 0;
  double detection_ms = -1;
  double recovery_ms = -1;
  int steps_rolled_back = 0;
  double elapsed_ms = -1;
  double baseline_ms = -1;  // Same run, no crash.
  std::string error;
  bool ok() const { return error.empty(); }
};

train::TrainingConfig MakeConfig(int machines, int interval) {
  train::TrainingConfig config;
  config.model = models::Fcn5();
  config.num_machines = machines;
  config.batch_size = 16;
  config.mechanism = train::MechanismKind::kRdmaZeroCopy;
  config.step_timeout_ns = 200'000'000;
  config.max_step_retries = 2;
  config.elastic = true;
  config.checkpoint_interval_steps = interval;
  return config;
}

RecoveryPoint MeasurePoint(int machines, int interval, int steps, bool crash) {
  RecoveryPoint point;
  point.machines = machines;
  point.checkpoint_interval = interval;
  train::TrainingDriver driver(MakeConfig(machines, interval));
  Status init = driver.Initialize();
  if (!init.ok()) {
    point.error = init.ToString();
    return point;
  }
  sim::FaultInjector injector(1);
  if (crash) {
    // The highest-numbered worker dies mid-run — several steps in, so the
    // checkpoint interval determines how much completed work rolls back.
    injector.CrashHost(machines - 1,
                       driver.cluster()->simulator()->Now() + 250'000'000);
    driver.cluster()->fabric()->SetFaultInjector(&injector);
  }
  auto report = driver.RunElastic(steps);
  if (!report.ok()) {
    point.error = report.status().ToString();
    return point;
  }
  point.detection_ms = report->last_detection_latency_ns / 1e6;
  point.recovery_ms = report->last_recovery_ns / 1e6;
  point.steps_rolled_back = report->steps_rolled_back;
  point.elapsed_ms = report->elapsed_ns / 1e6;
  return point;
}

void Run() {
  PrintHeader("Elastic recovery: MTTR vs checkpoint interval and cluster size",
              "One worker fail-stops mid-run; detection via missed leases, then\n"
              "reconfigure + rollback-to-checkpoint on the survivors (virtual time).");

  const int kSteps = 12;
  JsonEmitter json;
  std::printf("%9s %9s | %13s %12s %12s | %11s %12s %9s\n", "machines", "ckpt_int",
              "detection_ms", "recovery_ms", "rolledback", "elapsed_ms", "baseline_ms",
              "stretch");
  PrintRule();
  for (int machines : {2, 4, 8}) {
    const RecoveryPoint baseline =
        MeasurePoint(machines, /*interval=*/5, kSteps, /*crash=*/false);
    for (int interval : {1, 2, 5, 10}) {
      RecoveryPoint p = MeasurePoint(machines, interval, kSteps, /*crash=*/true);
      p.baseline_ms = baseline.elapsed_ms;
      if (!p.ok()) {
        std::printf("%9d %9d | measurement failed: %s\n", machines, interval,
                    p.error.c_str());
        continue;
      }
      const double stretch =
          p.baseline_ms > 0 ? p.elapsed_ms / p.baseline_ms : -1.0;
      std::printf("%9d %9d | %13.3f %12.3f %12d | %11.2f %12.2f %8.2fx\n", machines,
                  interval, p.detection_ms, p.recovery_ms, p.steps_rolled_back,
                  p.elapsed_ms, p.baseline_ms, stretch);
      json.BeginRow();
      json.Field("machines", static_cast<int64_t>(p.machines));
      json.Field("checkpoint_interval_steps", static_cast<int64_t>(p.checkpoint_interval));
      json.Field("detection_ms", p.detection_ms);
      json.Field("recovery_ms", p.recovery_ms);
      json.Field("steps_rolled_back", static_cast<int64_t>(p.steps_rolled_back));
      json.Field("elapsed_ms", p.elapsed_ms);
      json.Field("baseline_ms", p.baseline_ms);
      json.Field("stretch", stretch);
      json.EndRow();
    }
    PrintRule();
  }
  std::printf("\nDetection latency is set by the lease parameters (interval, timeout,\n"
              "misses-to-confirm), not the checkpoint interval; the checkpoint interval\n"
              "buys shorter rollback at the cost of per-interval snapshot time.\n");
  std::printf("\nJSON:\n");
  json.PrintTo(stdout);
}

}  // namespace
}  // namespace bench
}  // namespace rdmadl

int main() {
  rdmadl::bench::Run();
  return 0;
}
