// Ablations of the paper's design choices (DESIGN.md §3):
//
//   A. QP/CQ parallelism (§3.1, Figure 4): the device is configured with N
//      CQs and N QPs per peer; the paper picks 4/4 "following the guideline
//      in [Kalia et al.]". Sweep 1..8.
//   B. Static vs forced-dynamic protocol on statically-shaped tensors (§3.3):
//      the dynamic path pays metadata write + remote read per transfer.
//   C. Polling interval of the polling-async scheduler (§4): longer idle
//      intervals add receive latency; shorter ones burn CPU (in the
//      simulation: events).
#include "bench/bench_util.h"
#include "src/models/model_spec.h"

namespace rdmadl {
namespace {

void SweepQps() {
  std::printf("\n[A] QP/CQ parallelism sweep (§3.1) — VGGNet-16, 8 servers, batch 32\n");
  std::printf("%-12s | %12s\n", "CQs=QPs", "step (ms)");
  bench::PrintRule();
  for (int n : {1, 2, 4, 8}) {
    train::TrainingConfig config;
    config.model = models::Vgg16();
    config.num_machines = 8;
    config.batch_size = 32;
    config.mechanism = train::MechanismKind::kRdmaZeroCopy;
    config.num_cqs = n;
    config.num_qps_per_peer = n;
    bench::StepResult result = bench::MeasureConfig(config, 2, 2);
    CHECK(result.ok()) << result.error;
    std::printf("%-12d | %12.2f%s\n", n, result.step_ms,
                n == 4 ? "   <- paper's configuration" : "");
  }
}

void SweepProtocol() {
  std::printf("\n[B] Static placement vs forced dynamic allocation (§3.2 vs §3.3)\n");
  std::printf("Per-transfer comparison, 2 servers (one tensor per step):\n");
  std::printf("%-12s | %12s %12s | %10s\n", "tensor", "static(ms)", "dynamic(ms)",
              "overhead");
  bench::PrintRule();
  for (int64_t mb : {1, 8, 64}) {
    double ms[2];
    for (int dynamic = 0; dynamic < 2; ++dynamic) {
      train::TrainingConfig config;
      models::ModelSpec model;
      model.name = "blob";
      model.per_sample_time_ms = 0.0;
      model.saturation_batch = 128;
      models::LayerSpec layer;
      layer.name = "blob";
      layer.vars.push_back({"blob/W", tensor::TensorShape{mb * 256 * 1024}});
      layer.activation_dim = 8;
      model.layers.push_back(layer);
      model.input_dim = 8;
      config.model = model;
      config.num_machines = 2;
      config.batch_size = 1;
      config.mechanism = train::MechanismKind::kRdmaZeroCopy;
      config.force_dynamic = (dynamic == 1);
      bench::StepResult result = bench::MeasureConfig(config, 2, 4);
      CHECK(result.ok()) << result.error;
      ms[dynamic] = result.step_ms;
    }
    std::printf("%10lld MB | %12.3f %12.3f | %9.1f%%\n", static_cast<long long>(mb), ms[0],
                ms[1], (ms[1] / ms[0] - 1.0) * 100.0);
  }
  std::printf("The dynamic path adds a metadata write, a receiver-side allocation and a\n"
              "read round-trip per tensor — why §3.2 prefers static placement when the\n"
              "analyzer can prove shapes. (At 8-server fan-out the per-transfer gap is\n"
              "masked by link-level serialization; see DESIGN.md.)\n");
}

void SweepPolling() {
  std::printf("\n[C] Polling-async idle interval sweep (§4) — LSTM, 8 servers, batch 32\n");
  std::printf("%-14s | %12s\n", "interval (us)", "step (ms)");
  bench::PrintRule();
  for (int64_t interval_ns : {250, 1'000, 8'000, 64'000, 512'000}) {
    train::TrainingConfig config;
    config.model = models::Lstm();
    config.num_machines = 8;
    config.batch_size = 32;
    config.mechanism = train::MechanismKind::kRdmaZeroCopy;
    config.cost.idle_poll_interval_ns = interval_ns;
    config.cost.idle_poll_max_interval_ns = std::max<int64_t>(interval_ns, 16'000);
    bench::StepResult result = bench::MeasureConfig(config, 2, 2);
    CHECK(result.ok()) << result.error;
    std::printf("%-14.1f | %12.2f\n", interval_ns / 1e3, result.step_ms);
  }
  std::printf("Coarse polling delays every tensor arrival; the paper's polling-async mode\n"
              "keeps the interval effectively tiny by re-enqueueing polls at the ready-\n"
              "queue tail so they run whenever the executor breathes.\n");
}

void Run() {
  bench::PrintHeader("Ablations — design choices called out in DESIGN.md", "");
  SweepQps();
  SweepProtocol();
  SweepPolling();
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
