// Regenerates Figure 10: convergence of three end-to-end applications
// (Seq2Seq translation, CIFAR image recognition, SE sentence embedding) under
// gRPC.TCP, gRPC.RDMA, and our RDMA mechanism. 8 workers, real-data surrogate
// (see src/train/convergence.h for the substitution).
//
// Paper results: Seq2Seq 220 min (TCP) -> 66 min (RDMA), ~3x, and 53 % faster
// than gRPC.RDMA; CIFAR 2.6x over TCP and 18 % over gRPC.RDMA; SE 185 min ->
// ~100 min (85 % speedup), with gRPC.RDMA crashing (no curve).
#include <functional>

#include "bench/bench_util.h"
#include "src/models/model_spec.h"
#include "src/train/convergence.h"

namespace rdmadl {
namespace {

struct App {
  models::ModelSpec model;
  std::function<train::ConvergenceProfile(double)> profile_factory;
  int batch;
};

void Run() {
  bench::PrintHeader("Figure 10 — Convergence of real applications (8 workers)",
                     "Metric-vs-time curves per communication mechanism; curves are "
                     "anchored so gRPC.TCP matches the paper's reported time.");
  const App apps[] = {
      {models::Seq2Seq(), train::Seq2SeqConvergence, 32},
      {models::Cifar10(), train::CifarConvergence, 128},
      {models::SentenceEmbedding(), train::SeConvergence, 32},
  };
  const train::MechanismKind kMechs[] = {train::MechanismKind::kGrpcTcp,
                                         train::MechanismKind::kGrpcRdma,
                                         train::MechanismKind::kRdmaZeroCopy};
  const char* kMechNames[] = {"gRPC.TCP", "gRPC.RDMA", "RDMA"};

  for (const App& app : apps) {
    std::printf("\n--- %s (batch %d/worker) ---\n", app.model.name.c_str(), app.batch);
    double step_ms[3] = {-1, -1, -1};
    for (int m = 0; m < 3; ++m) {
      train::TrainingConfig config;
      config.model = app.model;
      config.num_machines = 8;
      config.batch_size = app.batch;
      config.mechanism = kMechs[m];
      bench::StepResult result = bench::MeasureConfig(config, 2, 2);
      step_ms[m] = result.ok() ? result.step_ms : -1;
    }
    CHECK_GT(step_ms[0], 0) << "gRPC.TCP must run";

    // Samples per minute under gRPC.TCP anchors the curve.
    auto samples_per_minute = [&](double ms) {
      return 60'000.0 / ms * app.batch * 8;  // 8 synchronized workers.
    };
    const train::ConvergenceProfile profile =
        app.profile_factory(samples_per_minute(step_ms[0]));

    std::printf("%-10s | %14s | %10s -> %s %.2f\n", "mechanism", "step time", "time",
                profile.metric_name.c_str(), profile.target);
    bench::PrintRule();
    double minutes[3] = {0, 0, 0};
    for (int m = 0; m < 3; ++m) {
      if (step_ms[m] < 0) {
        std::printf("%-10s | %14s | training CRASHED (tensor > 1 GB), as in the paper\n",
                    kMechNames[m], "-");
        continue;
      }
      minutes[m] =
          train::MinutesToTarget(profile, samples_per_minute(step_ms[m]));
      std::printf("%-10s | %11.1f ms | %7.0f min\n", kMechNames[m], step_ms[m], minutes[m]);
    }
    if (minutes[2] > 0 && minutes[0] > 0) {
      std::printf("RDMA speedup over gRPC.TCP: %.1fx", minutes[0] / minutes[2]);
      if (minutes[1] > 0) {
        std::printf(", over gRPC.RDMA: %.0f%%",
                    (minutes[1] / minutes[2] - 1.0) * 100.0);
      }
      std::printf("\n");
    }

    // Metric-vs-time series (the curves of Figure 10).
    std::printf("curve  minutes : %s\n", profile.metric_name.c_str());
    for (int m = 0; m < 3; ++m) {
      if (step_ms[m] < 0) continue;
      std::printf("  %-10s:", kMechNames[m]);
      for (const auto& point :
           train::SimulateCurve(profile, samples_per_minute(step_ms[m]), 8)) {
        std::printf(" (%.0f, %.1f)", point.minutes, point.metric);
      }
      std::printf("\n");
    }
  }
  bench::PrintRule();
  std::printf("Paper: Seq2Seq 220->66 min (3x, 53%% over gRPC.RDMA); CIFAR 2.6x over TCP,\n"
              "18%% over gRPC.RDMA; SE 185->~100 min (85%%), gRPC.RDMA crashes.\n");
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
