// Regenerates Figure 9: throughput (mini-batches/s) of the six deep learning
// benchmarks on the 8-server cluster, for mini-batch sizes 1..64 (128 for the
// communication-bound models), under gRPC.TCP, gRPC.RDMA, and our RDMA
// mechanism. Also prints the average improvement of RDMA over gRPC.RDMA per
// model, which the paper reports as: AlexNet 169 %, Inception-v3 65 %,
// VGGNet-16 117-145 %, LSTM 118 %, GRU 69 %, FCN-5 151 %.
#include <vector>

#include "bench/bench_util.h"
#include "src/models/model_spec.h"

namespace rdmadl {
namespace {

void Run() {
  bench::PrintHeader("Figure 9 — Deep learning benchmarks, 8 servers",
                     "Throughput in mini-batches/s per mechanism and mini-batch size.");
  const train::MechanismKind kMechs[] = {train::MechanismKind::kGrpcTcp,
                                         train::MechanismKind::kGrpcRdma,
                                         train::MechanismKind::kRdmaZeroCopy};
  for (const models::ModelSpec& model : models::AllBenchmarkModels()) {
    std::printf("\n--- %s (model %.1f MB, compute %.2f ms/sample) ---\n", model.name.c_str(),
                model.SizeMb(), model.per_sample_time_ms);
    std::printf("%-6s | %12s %12s %12s | %10s %10s\n", "batch", "gRPC.TCP", "gRPC.RDMA",
                "RDMA", "RDMA/gR%", "RDMA/TCPx");
    bench::PrintRule();
    std::vector<int> batches = {1, 2, 4, 8, 16, 32, 64};
    if (model.saturation_batch >= 128) batches.push_back(128);
    double improvement_sum = 0;
    int improvement_count = 0;
    for (int batch : batches) {
      double throughput[3];
      for (int m = 0; m < 3; ++m) {
        train::TrainingConfig config;
        config.model = model;
        config.num_machines = 8;
        config.batch_size = batch;
        config.mechanism = kMechs[m];
        bench::StepResult result = bench::MeasureConfig(config, /*warmup=*/2, /*steps=*/2);
        CHECK(result.ok()) << result.error;
        throughput[m] = 1000.0 / result.step_ms;
      }
      const double improvement = (throughput[2] / throughput[1] - 1.0) * 100.0;
      improvement_sum += improvement;
      ++improvement_count;
      std::printf("%-6d | %12.2f %12.2f %12.2f | %9.0f%% %9.1fx\n", batch, throughput[0],
                  throughput[1], throughput[2], improvement, throughput[2] / throughput[0]);
    }
    std::printf("average RDMA improvement over gRPC.RDMA: %.0f%%\n",
                improvement_sum / improvement_count);
  }
  bench::PrintRule();
  std::printf("Paper (avg improvement of RDMA over gRPC.RDMA): AlexNet 169%%, "
              "Inception-v3 65%%,\nVGGNet-16 117-145%%, LSTM 118%%, GRU 69%%, FCN-5 151%%; "
              "25x over gRPC.TCP for VGG.\n");
}

}  // namespace
}  // namespace rdmadl

int main() {
  rdmadl::Run();
  return 0;
}
