file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_benchmarks.dir/bench_fig9_benchmarks.cc.o"
  "CMakeFiles/bench_fig9_benchmarks.dir/bench_fig9_benchmarks.cc.o.d"
  "bench_fig9_benchmarks"
  "bench_fig9_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
