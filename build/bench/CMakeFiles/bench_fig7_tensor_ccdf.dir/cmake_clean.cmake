file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tensor_ccdf.dir/bench_fig7_tensor_ccdf.cc.o"
  "CMakeFiles/bench_fig7_tensor_ccdf.dir/bench_fig7_tensor_ccdf.cc.o.d"
  "bench_fig7_tensor_ccdf"
  "bench_fig7_tensor_ccdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tensor_ccdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
