# Empty compiler generated dependencies file for bench_fig7_tensor_ccdf.
# This may be replaced when dependencies are built.
