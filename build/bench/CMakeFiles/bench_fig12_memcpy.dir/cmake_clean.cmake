file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_memcpy.dir/bench_fig12_memcpy.cc.o"
  "CMakeFiles/bench_fig12_memcpy.dir/bench_fig12_memcpy.cc.o.d"
  "bench_fig12_memcpy"
  "bench_fig12_memcpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_memcpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
