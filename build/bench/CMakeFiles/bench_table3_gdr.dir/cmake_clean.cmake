file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gdr.dir/bench_table3_gdr.cc.o"
  "CMakeFiles/bench_table3_gdr.dir/bench_table3_gdr.cc.o.d"
  "bench_table3_gdr"
  "bench_table3_gdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
