# Empty dependencies file for bench_table3_gdr.
# This may be replaced when dependencies are built.
