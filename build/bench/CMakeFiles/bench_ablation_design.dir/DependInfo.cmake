
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_design.cc" "bench/CMakeFiles/bench_ablation_design.dir/bench_ablation_design.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_design.dir/bench_ablation_design.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/rdmadl_train.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rdmadl_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/rdmadl_models.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rdmadl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/rdmadl_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/rdmadl_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rdmadl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rdmadl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rdmadl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/rdmadl_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rdmadl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmadl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmadl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
