file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_util.dir/logging.cc.o"
  "CMakeFiles/rdmadl_util.dir/logging.cc.o.d"
  "CMakeFiles/rdmadl_util.dir/status.cc.o"
  "CMakeFiles/rdmadl_util.dir/status.cc.o.d"
  "CMakeFiles/rdmadl_util.dir/strings.cc.o"
  "CMakeFiles/rdmadl_util.dir/strings.cc.o.d"
  "librdmadl_util.a"
  "librdmadl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
