file(REMOVE_RECURSE
  "librdmadl_util.a"
)
