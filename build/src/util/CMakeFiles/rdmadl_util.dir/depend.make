# Empty dependencies file for rdmadl_util.
# This may be replaced when dependencies are built.
