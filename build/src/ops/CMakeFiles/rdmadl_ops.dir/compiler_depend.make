# Empty compiler generated dependencies file for rdmadl_ops.
# This may be replaced when dependencies are built.
