file(REMOVE_RECURSE
  "librdmadl_ops.a"
)
