file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_ops.dir/kernel.cc.o"
  "CMakeFiles/rdmadl_ops.dir/kernel.cc.o.d"
  "CMakeFiles/rdmadl_ops.dir/standard_ops.cc.o"
  "CMakeFiles/rdmadl_ops.dir/standard_ops.cc.o.d"
  "librdmadl_ops.a"
  "librdmadl_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
