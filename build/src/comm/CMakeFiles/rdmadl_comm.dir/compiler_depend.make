# Empty compiler generated dependencies file for rdmadl_comm.
# This may be replaced when dependencies are built.
