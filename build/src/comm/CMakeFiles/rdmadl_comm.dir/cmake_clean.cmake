file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_comm.dir/rpc_mechanism.cc.o"
  "CMakeFiles/rdmadl_comm.dir/rpc_mechanism.cc.o.d"
  "CMakeFiles/rdmadl_comm.dir/zerocopy_mechanism.cc.o"
  "CMakeFiles/rdmadl_comm.dir/zerocopy_mechanism.cc.o.d"
  "librdmadl_comm.a"
  "librdmadl_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
