file(REMOVE_RECURSE
  "librdmadl_comm.a"
)
