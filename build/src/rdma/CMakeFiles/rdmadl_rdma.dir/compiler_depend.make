# Empty compiler generated dependencies file for rdmadl_rdma.
# This may be replaced when dependencies are built.
