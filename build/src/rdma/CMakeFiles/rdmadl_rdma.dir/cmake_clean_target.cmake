file(REMOVE_RECURSE
  "librdmadl_rdma.a"
)
