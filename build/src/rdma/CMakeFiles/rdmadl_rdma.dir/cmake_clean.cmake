file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_rdma.dir/verbs.cc.o"
  "CMakeFiles/rdmadl_rdma.dir/verbs.cc.o.d"
  "librdmadl_rdma.a"
  "librdmadl_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
