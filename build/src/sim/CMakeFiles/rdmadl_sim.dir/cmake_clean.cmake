file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_sim.dir/simulator.cc.o"
  "CMakeFiles/rdmadl_sim.dir/simulator.cc.o.d"
  "CMakeFiles/rdmadl_sim.dir/trace.cc.o"
  "CMakeFiles/rdmadl_sim.dir/trace.cc.o.d"
  "librdmadl_sim.a"
  "librdmadl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
