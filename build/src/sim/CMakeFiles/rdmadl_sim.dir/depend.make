# Empty dependencies file for rdmadl_sim.
# This may be replaced when dependencies are built.
