file(REMOVE_RECURSE
  "librdmadl_sim.a"
)
