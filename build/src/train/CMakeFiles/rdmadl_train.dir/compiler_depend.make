# Empty compiler generated dependencies file for rdmadl_train.
# This may be replaced when dependencies are built.
