file(REMOVE_RECURSE
  "librdmadl_train.a"
)
