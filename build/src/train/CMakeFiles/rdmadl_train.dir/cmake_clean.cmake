file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_train.dir/convergence.cc.o"
  "CMakeFiles/rdmadl_train.dir/convergence.cc.o.d"
  "CMakeFiles/rdmadl_train.dir/ps_training.cc.o"
  "CMakeFiles/rdmadl_train.dir/ps_training.cc.o.d"
  "librdmadl_train.a"
  "librdmadl_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
