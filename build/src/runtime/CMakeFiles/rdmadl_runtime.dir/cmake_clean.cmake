file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_runtime.dir/executor.cc.o"
  "CMakeFiles/rdmadl_runtime.dir/executor.cc.o.d"
  "CMakeFiles/rdmadl_runtime.dir/host_runtime.cc.o"
  "CMakeFiles/rdmadl_runtime.dir/host_runtime.cc.o.d"
  "CMakeFiles/rdmadl_runtime.dir/session.cc.o"
  "CMakeFiles/rdmadl_runtime.dir/session.cc.o.d"
  "librdmadl_runtime.a"
  "librdmadl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
