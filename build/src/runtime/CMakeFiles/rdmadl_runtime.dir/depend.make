# Empty dependencies file for rdmadl_runtime.
# This may be replaced when dependencies are built.
