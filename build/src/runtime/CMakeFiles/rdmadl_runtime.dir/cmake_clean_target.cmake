file(REMOVE_RECURSE
  "librdmadl_runtime.a"
)
