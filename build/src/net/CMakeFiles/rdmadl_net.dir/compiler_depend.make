# Empty compiler generated dependencies file for rdmadl_net.
# This may be replaced when dependencies are built.
