file(REMOVE_RECURSE
  "librdmadl_net.a"
)
