file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_net.dir/fabric.cc.o"
  "CMakeFiles/rdmadl_net.dir/fabric.cc.o.d"
  "librdmadl_net.a"
  "librdmadl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
