file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_tensor.dir/allocator.cc.o"
  "CMakeFiles/rdmadl_tensor.dir/allocator.cc.o.d"
  "CMakeFiles/rdmadl_tensor.dir/arena_allocator.cc.o"
  "CMakeFiles/rdmadl_tensor.dir/arena_allocator.cc.o.d"
  "CMakeFiles/rdmadl_tensor.dir/dtype.cc.o"
  "CMakeFiles/rdmadl_tensor.dir/dtype.cc.o.d"
  "CMakeFiles/rdmadl_tensor.dir/shape.cc.o"
  "CMakeFiles/rdmadl_tensor.dir/shape.cc.o.d"
  "CMakeFiles/rdmadl_tensor.dir/tensor.cc.o"
  "CMakeFiles/rdmadl_tensor.dir/tensor.cc.o.d"
  "librdmadl_tensor.a"
  "librdmadl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
