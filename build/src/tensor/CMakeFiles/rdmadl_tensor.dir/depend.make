# Empty dependencies file for rdmadl_tensor.
# This may be replaced when dependencies are built.
