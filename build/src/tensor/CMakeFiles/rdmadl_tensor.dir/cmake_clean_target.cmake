file(REMOVE_RECURSE
  "librdmadl_tensor.a"
)
