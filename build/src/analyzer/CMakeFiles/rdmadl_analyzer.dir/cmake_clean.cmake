file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_analyzer.dir/shape_inference.cc.o"
  "CMakeFiles/rdmadl_analyzer.dir/shape_inference.cc.o.d"
  "librdmadl_analyzer.a"
  "librdmadl_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
