file(REMOVE_RECURSE
  "librdmadl_analyzer.a"
)
