
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/shape_inference.cc" "src/analyzer/CMakeFiles/rdmadl_analyzer.dir/shape_inference.cc.o" "gcc" "src/analyzer/CMakeFiles/rdmadl_analyzer.dir/shape_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rdmadl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmadl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rdmadl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
