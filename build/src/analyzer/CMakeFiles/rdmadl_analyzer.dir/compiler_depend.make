# Empty compiler generated dependencies file for rdmadl_analyzer.
# This may be replaced when dependencies are built.
