# Empty dependencies file for rdmadl_models.
# This may be replaced when dependencies are built.
