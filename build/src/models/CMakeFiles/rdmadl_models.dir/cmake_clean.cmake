file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_models.dir/model_spec.cc.o"
  "CMakeFiles/rdmadl_models.dir/model_spec.cc.o.d"
  "librdmadl_models.a"
  "librdmadl_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
