file(REMOVE_RECURSE
  "librdmadl_models.a"
)
