# Empty compiler generated dependencies file for rdmadl_graph.
# This may be replaced when dependencies are built.
