file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_graph.dir/graph.cc.o"
  "CMakeFiles/rdmadl_graph.dir/graph.cc.o.d"
  "CMakeFiles/rdmadl_graph.dir/op_registry.cc.o"
  "CMakeFiles/rdmadl_graph.dir/op_registry.cc.o.d"
  "CMakeFiles/rdmadl_graph.dir/partition.cc.o"
  "CMakeFiles/rdmadl_graph.dir/partition.cc.o.d"
  "librdmadl_graph.a"
  "librdmadl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
