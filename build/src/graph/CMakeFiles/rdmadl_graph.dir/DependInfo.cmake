
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/rdmadl_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/rdmadl_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/op_registry.cc" "src/graph/CMakeFiles/rdmadl_graph.dir/op_registry.cc.o" "gcc" "src/graph/CMakeFiles/rdmadl_graph.dir/op_registry.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/rdmadl_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/rdmadl_graph.dir/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rdmadl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmadl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
