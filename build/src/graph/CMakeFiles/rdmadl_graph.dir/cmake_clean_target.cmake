file(REMOVE_RECURSE
  "librdmadl_graph.a"
)
