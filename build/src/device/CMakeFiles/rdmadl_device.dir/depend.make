# Empty dependencies file for rdmadl_device.
# This may be replaced when dependencies are built.
