file(REMOVE_RECURSE
  "CMakeFiles/rdmadl_device.dir/rdma_device.cc.o"
  "CMakeFiles/rdmadl_device.dir/rdma_device.cc.o.d"
  "librdmadl_device.a"
  "librdmadl_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmadl_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
