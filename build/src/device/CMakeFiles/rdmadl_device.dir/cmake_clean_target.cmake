file(REMOVE_RECURSE
  "librdmadl_device.a"
)
