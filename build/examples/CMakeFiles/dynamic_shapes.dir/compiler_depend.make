# Empty compiler generated dependencies file for dynamic_shapes.
# This may be replaced when dependencies are built.
