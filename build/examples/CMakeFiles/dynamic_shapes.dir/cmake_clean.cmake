file(REMOVE_RECURSE
  "CMakeFiles/dynamic_shapes.dir/dynamic_shapes.cpp.o"
  "CMakeFiles/dynamic_shapes.dir/dynamic_shapes.cpp.o.d"
  "dynamic_shapes"
  "dynamic_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
