#!/usr/bin/env bash
# Tier-1 verification entry point: configure, build, run the test suite.
# CI and humans both invoke this one script.
#
# Usage:
#   scripts/check.sh              # plain build + ctest, then ASan+UBSan
#                                 # build + ctest (RDMADL_SANITIZE=ON)
#   scripts/check.sh --sanitize   # only the sanitizer build + ctest
#   scripts/check.sh --plain      # only the plain build + ctest
#   scripts/check.sh --chaos      # plain build, then sweep the seeded chaos
#                                 # suites over RDMADL_FAULT_SEED=1..10
#   scripts/check.sh --elastic    # plain build, then sweep the elastic
#                                 # recovery suite (crash schedules derived
#                                 # from RDMADL_FAULT_SEED) over the seeds
#
# The chaos/elastic suites are also registered as ctest labels, so
# `ctest -L chaos` / `ctest -L elastic` run a two-seed smoke subset as part
# of any ctest invocation; the modes here sweep the full seed list.
#
# Environment:
#   BUILD_DIR    override the build directory (default: build, or
#                build-sanitize for the sanitizer pass)
#   JOBS         parallelism (default: nproc)
#   CHAOS_SEEDS  space-separated seed list for --chaos/--elastic
#                (default: 1..10)
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=both
for arg in "$@"; do
  case "$arg" in
    --sanitize) MODE=sanitize ;;
    --plain) MODE=plain ;;
    --chaos) MODE=chaos ;;
    --elastic) MODE=elastic ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="${JOBS:-$(nproc)}"

build_and_test() {
  local sanitize="$1" build_dir="$2"
  cmake -B "$build_dir" -S . -DRDMADL_SANITIZE="$sanitize"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

case "$MODE" in
  plain)
    build_and_test OFF "${BUILD_DIR:-build}"
    ;;
  sanitize)
    build_and_test ON "${BUILD_DIR:-build-sanitize}"
    ;;
  both)
    build_and_test OFF "${BUILD_DIR:-build}"
    build_and_test ON "${BUILD_DIR:-build-sanitize}"
    ;;
  chaos)
    # Deterministic chaos sweep: the fault suites derive their fault
    # schedules from RDMADL_FAULT_SEED, so each seed is a distinct — but
    # reproducible — storm of drops, spikes, flaps and crashes.
    BUILD_DIR="${BUILD_DIR:-build}"
    cmake -B "$BUILD_DIR" -S . -DRDMADL_SANITIZE=OFF
    cmake --build "$BUILD_DIR" -j "$JOBS"
    for seed in ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}; do
      echo "=== chaos sweep: RDMADL_FAULT_SEED=$seed ==="
      RDMADL_FAULT_SEED="$seed" "$BUILD_DIR/tests/fault_test" --gtest_brief=1
      RDMADL_FAULT_SEED="$seed" "$BUILD_DIR/tests/property_test" --gtest_brief=1 \
        --gtest_filter='Seeds/HealingFaultAllReduceTest.*'
    done
    echo "chaos sweep passed for seeds: ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}"
    ;;
  elastic)
    # Elastic recovery sweep: crash one host per scenario (worker, PS,
    # all-reduce peer) and require detection + reconfiguration + rollback to
    # finish the run on the survivors. The membership spike property test
    # rides along so each seed also attests "no false positives under load".
    BUILD_DIR="${BUILD_DIR:-build}"
    cmake -B "$BUILD_DIR" -S . -DRDMADL_SANITIZE=OFF
    cmake --build "$BUILD_DIR" -j "$JOBS"
    for seed in ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}; do
      echo "=== elastic sweep: RDMADL_FAULT_SEED=$seed ==="
      RDMADL_FAULT_SEED="$seed" "$BUILD_DIR/tests/elastic_test" --gtest_brief=1
      RDMADL_FAULT_SEED="$seed" "$BUILD_DIR/tests/control_test" --gtest_brief=1 \
        --gtest_filter='MembershipPropertyTest.*'
    done
    echo "elastic sweep passed for seeds: ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}"
    ;;
esac
