#!/usr/bin/env bash
# Tier-1 verification entry point: configure, build, run the test suite.
# CI and humans both invoke this one script.
#
# Usage:
#   scripts/check.sh              # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize   # same, with ASan+UBSan (RDMADL_SANITIZE=ON)
#
# Environment:
#   BUILD_DIR  override the build directory (default: build, or
#              build-sanitize with --sanitize)
#   JOBS       parallelism (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=OFF
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=ON ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$SANITIZE" == ON ]]; then
  BUILD_DIR="${BUILD_DIR:-build-sanitize}"
else
  BUILD_DIR="${BUILD_DIR:-build}"
fi
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S . -DRDMADL_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
