#!/usr/bin/env bash
# Tier-1 verification entry point: configure, build, run the test suite.
# CI and humans both invoke this one script.
#
# Usage:
#   scripts/check.sh              # plain build + ctest, then ASan+UBSan
#                                 # build + ctest (RDMADL_SANITIZE=address)
#   scripts/check.sh --sanitize   # sanitizer sweep: ASan+UBSan build + ctest,
#                                 # then a standalone UBSan build + ctest
#                                 # (RDMADL_SANITIZE=undefined, recover
#                                 # disabled), then TSan build + ctest
#   scripts/check.sh --plain      # only the plain build + ctest
#   scripts/check.sh --tidy       # clang-tidy over src/ using the checks in
#                                 # .clang-tidy; any warning fails the run
#                                 # (skips with a notice when clang-tidy is
#                                 # not installed)
#   scripts/check.sh --chaos      # plain build, then sweep the seeded chaos
#                                 # suites over RDMADL_FAULT_SEED=1..10
#   scripts/check.sh --elastic    # plain build, then sweep the elastic
#                                 # recovery suite (crash schedules derived
#                                 # from RDMADL_FAULT_SEED) over the seeds
#   scripts/check.sh --verify     # RdmaCheck CI mode: the violation matrix
#                                 # (check_test), then the chaos + elastic
#                                 # suites under RDMADL_CHECK=1 across the
#                                 # seed list — every test runs with the
#                                 # protocol checker installed and fails on
#                                 # any diagnostic
#   scripts/check.sh --bench-smoke # plain build, then run the micro benches
#                                 # in their fast configuration; fails on a
#                                 # crash or on non-deterministic stdout
#                                 # (bench_fig8_micro --quick --sweep is run
#                                 # twice and the outputs diffed). Also part
#                                 # of the default (no-flag) flow.
#   scripts/check.sh --scale      # cluster-scale smoke: a 256-host all-reduce
#                                 # and PS step (bench_scale --smoke) under
#                                 # RdmaCheck plus a seeded chaos storm, run
#                                 # twice with stdout diffed — crashes,
#                                 # checker diagnostics, QP-cap overflows and
#                                 # nondeterminism all fail. Also part of the
#                                 # default (no-flag) flow.
#   scripts/check.sh --congestion # congestion/tail-latency sweep (ISSUE 8):
#                                 # the congestion suite plain and under
#                                 # RDMADL_CHECK=1, then bench_scale --quick
#                                 # with bounded queues + ECN + DCQCN +
#                                 # stragglers enabled across the chaos seed
#                                 # list — each seed run twice with stdout
#                                 # diffed — one tail-latency (p50/p99/p999)
#                                 # run, and an ASan+UBSan pass over the
#                                 # congestion suite. A smoke subset is also
#                                 # part of the default (no-flag) flow.
#   scripts/check.sh --collectives # collective conformance sweep: the
#                                 # equivalence matrix (every algorithm x
#                                 # topology shape x tensor size against the
#                                 # scalar reference) plain and under
#                                 # RDMADL_CHECK=1, the multi-level chaos and
#                                 # elastic tests across the seed list, and
#                                 # an ASan+UBSan pass over the conformance
#                                 # binary
#   scripts/check.sh --explore    # schedule-space exploration (ISSUE 9): the
#                                 # explorer's own suite (mutations, POR,
#                                 # minimizer, stall detector), the Explore*
#                                 # harness bodies in the fault/conformance/
#                                 # congestion suites under RDMADL_EXPLORE=16,
#                                 # and the bench_explore report run twice
#                                 # with stdout diffed (exploration order,
#                                 # pruning counts and detection schedules
#                                 # must be byte-identical across runs). A
#                                 # smoke subset rides the default flow via
#                                 # the `explore` ctest label.
#
# The chaos/elastic/check/scale suites are also registered as ctest labels,
# so `ctest -L chaos` / `ctest -L elastic` / `ctest -L check` /
# `ctest -L scale` run a smoke subset as part of any ctest invocation; the
# modes here sweep the full seed list or cluster size.
#
# Environment:
#   BUILD_DIR    override the build directory (default: build, or
#                build-<flavor> for sanitizer passes)
#   JOBS         parallelism (default: nproc)
#   CHAOS_SEEDS  space-separated seed list for --chaos/--elastic/--verify
#                (default: 1..10)
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=both
for arg in "$@"; do
  case "$arg" in
    --sanitize) MODE=sanitize ;;
    --plain) MODE=plain ;;
    --tidy) MODE=tidy ;;
    --chaos) MODE=chaos ;;
    --elastic) MODE=elastic ;;
    --verify) MODE=verify ;;
    --bench-smoke) MODE=bench-smoke ;;
    --scale) MODE=scale ;;
    --collectives) MODE=collectives ;;
    --congestion) MODE=congestion ;;
    --explore) MODE=explore ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="${JOBS:-$(nproc)}"

build_and_test() {
  local sanitize="$1" build_dir="$2"
  cmake -B "$build_dir" -S . -DRDMADL_SANITIZE="$sanitize"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

plain_build() {
  BUILD_DIR="${BUILD_DIR:-build}"
  cmake -B "$BUILD_DIR" -S . -DRDMADL_SANITIZE=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS"
}

# Bench smoke: the micro benches in their fast configuration. Fails on any
# crash, and on non-deterministic stdout — bench_fig8_micro reports virtual
# time only on stdout (wall-clock goes to stderr), so two runs must be
# byte-identical. bench_micro_components reports wall-clock, so it only gets
# the crash check.
bench_smoke() {
  local build_dir="$1"
  local out_a out_b
  out_a="$(mktemp)" && out_b="$(mktemp)"
  "$build_dir/bench/bench_fig8_micro" --quick --sweep >"$out_a" 2>/dev/null
  "$build_dir/bench/bench_fig8_micro" --quick --sweep >"$out_b" 2>/dev/null
  if ! diff -u "$out_a" "$out_b"; then
    echo "bench smoke FAILED: bench_fig8_micro stdout differs between runs" >&2
    rm -f "$out_a" "$out_b"
    exit 1
  fi
  rm -f "$out_a" "$out_b"
  "$build_dir/bench/bench_micro_components" --benchmark_min_time=0.01 >/dev/null
  echo "bench smoke passed (deterministic stdout, no crashes)"
}

# Congestion smoke: one seed of the CC+straggler chaos storm — bench_scale
# --quick with bounded queues, ECN, DCQCN and the straggler knob live under
# RdmaCheck, run twice with stdout diffed. The full seed sweep lives in the
# --congestion mode; this keeps the default flow honest about the congested
# path without its runtime.
congestion_seed_run() {
  local build_dir="$1" seed="$2"
  local out_a out_b
  out_a="$(mktemp)" && out_b="$(mktemp)"
  "$build_dir/bench/bench_scale" --quick --check="$seed" --congestion >"$out_a" 2>/dev/null
  "$build_dir/bench/bench_scale" --quick --check="$seed" --congestion >"$out_b" 2>/dev/null
  if ! diff -u "$out_a" "$out_b"; then
    echo "congestion sweep FAILED: seed $seed stdout differs between runs" >&2
    rm -f "$out_a" "$out_b"
    exit 1
  fi
  rm -f "$out_a" "$out_b"
}

# Exploration smoke: the bench_explore report (POR state reduction, seeded
# mutation detection, clean baselines) run twice with stdout diffed. The
# explorer enumerates schedules from a deterministic DFS over commutation
# points, so pruning counts, detection schedules and minimized repro sizes
# must be byte-identical across runs; wall-clock throughput goes to stderr.
explore_smoke() {
  local build_dir="$1"
  local out_a out_b
  out_a="$(mktemp)" && out_b="$(mktemp)"
  "$build_dir/bench/bench_explore" >"$out_a" 2>/dev/null
  "$build_dir/bench/bench_explore" >"$out_b" 2>/dev/null
  if ! diff -u "$out_a" "$out_b"; then
    echo "explore smoke FAILED: bench_explore stdout differs between runs" >&2
    rm -f "$out_a" "$out_b"
    exit 1
  fi
  rm -f "$out_a" "$out_b"
  echo "explore smoke passed (schedule exploration deterministic, mutations caught)"
}

# Cluster-scale smoke: bench_scale --smoke runs a 256-host ring all-reduce
# and a 256-host colocated-PS training step, with RdmaCheck installed and a
# seeded chaos storm (latency spikes + link-down windows — delay-only, so the
# run must still complete) on the fabric. The binary itself fails on any
# checker diagnostic or per-NIC QP-cap overflow; running it twice and diffing
# stdout (virtual times and QP counters only — wall-clock goes to stderr)
# gates determinism under pooling + chaos.
scale_smoke() {
  local build_dir="$1"
  local out_a out_b
  out_a="$(mktemp)" && out_b="$(mktemp)"
  "$build_dir/bench/bench_scale" --smoke --check=1 >"$out_a" 2>/dev/null
  "$build_dir/bench/bench_scale" --smoke --check=1 >"$out_b" 2>/dev/null
  if ! diff -u "$out_a" "$out_b"; then
    echo "scale smoke FAILED: bench_scale stdout differs between runs" >&2
    rm -f "$out_a" "$out_b"
    exit 1
  fi
  rm -f "$out_a" "$out_b"
  echo "scale smoke passed (256-host step deterministic and checker-clean)"
}

case "$MODE" in
  plain)
    build_and_test OFF "${BUILD_DIR:-build}"
    ;;
  sanitize)
    build_and_test address "${BUILD_DIR:-build-sanitize}"
    build_and_test undefined "${BUILD_DIR:-build-ubsan}"
    build_and_test thread "${BUILD_DIR:-build-tsan}"
    ;;
  both)
    build_and_test OFF "${BUILD_DIR:-build}"
    bench_smoke "${BUILD_DIR:-build}"
    scale_smoke "${BUILD_DIR:-build}"
    congestion_seed_run "${BUILD_DIR:-build}" 1
    echo "congestion smoke passed (seed 1 deterministic and checker-clean)"
    explore_smoke "${BUILD_DIR:-build}"
    build_and_test address "${BUILD_DIR:-build-sanitize}"
    ;;
  tidy)
    # Static analysis over the library sources with the checks pinned in
    # .clang-tidy. Uses the compile database from the plain build.
    if ! command -v clang-tidy >/dev/null 2>&1; then
      echo "clang-tidy not installed; skipping --tidy (install clang-tidy to enable)"
      exit 0
    fi
    plain_build
    mapfile -t sources < <(find src -name '*.cc' | sort)
    clang-tidy -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "${sources[@]}"
    echo "clang-tidy passed over ${#sources[@]} source files"
    ;;
  chaos)
    # Deterministic chaos sweep: the fault suites derive their fault
    # schedules from RDMADL_FAULT_SEED, so each seed is a distinct — but
    # reproducible — storm of drops, spikes, flaps and crashes.
    plain_build
    for seed in ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}; do
      echo "=== chaos sweep: RDMADL_FAULT_SEED=$seed ==="
      RDMADL_FAULT_SEED="$seed" "$BUILD_DIR/tests/fault_test" --gtest_brief=1
      RDMADL_FAULT_SEED="$seed" "$BUILD_DIR/tests/property_test" --gtest_brief=1 \
        --gtest_filter='Seeds/HealingFaultAllReduceTest.*'
    done
    echo "chaos sweep passed for seeds: ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}"
    ;;
  elastic)
    # Elastic recovery sweep: crash one host per scenario (worker, PS,
    # all-reduce peer) and require detection + reconfiguration + rollback to
    # finish the run on the survivors. The membership spike property test
    # rides along so each seed also attests "no false positives under load".
    plain_build
    for seed in ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}; do
      echo "=== elastic sweep: RDMADL_FAULT_SEED=$seed ==="
      RDMADL_FAULT_SEED="$seed" "$BUILD_DIR/tests/elastic_test" --gtest_brief=1
      RDMADL_FAULT_SEED="$seed" "$BUILD_DIR/tests/control_test" --gtest_brief=1 \
        --gtest_filter='MembershipPropertyTest.*'
    done
    echo "elastic sweep passed for seeds: ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}"
    ;;
  verify)
    # RdmaCheck CI mode. First the negative matrix: every seeded violation
    # class must produce exactly its diagnostic kind. Then the chaos and
    # elastic suites run with the checker installed in every test
    # (RDMADL_CHECK=1): these runs are clean by construction, so a single
    # diagnostic — protocol violation or teardown leak — fails the sweep.
    plain_build
    "$BUILD_DIR/tests/check_test" --gtest_brief=1
    for seed in ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}; do
      echo "=== checker sweep: RDMADL_FAULT_SEED=$seed RDMADL_CHECK=1 ==="
      RDMADL_FAULT_SEED="$seed" RDMADL_CHECK=1 \
        "$BUILD_DIR/tests/fault_test" --gtest_brief=1
      RDMADL_FAULT_SEED="$seed" RDMADL_CHECK=1 \
        "$BUILD_DIR/tests/elastic_test" --gtest_brief=1
    done
    echo "checker sweep passed for seeds: ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}"
    ;;
  bench-smoke)
    plain_build
    bench_smoke "$BUILD_DIR"
    ;;
  scale)
    plain_build
    scale_smoke "$BUILD_DIR"
    ;;
  congestion)
    # Congestion/tail-latency robustness sweep (ISSUE 8). The congestion
    # suite (link queues, ECN, DCQCN reaction point, stragglers, backoff cap,
    # chaos seeds 1-10 in miniature) runs plain and with the protocol checker
    # installed; then bench_scale sweeps the chaos seed list with congestion
    # control AND the straggler knob live under RdmaCheck, each seed run
    # twice and diffed for byte-identical stdout; one run adds the
    # p50/p99/p999 tail columns; finally the suite runs under ASan+UBSan —
    # the admission/pause path and per-QP rate state are fresh memory-layout
    # territory.
    plain_build
    "$BUILD_DIR/tests/congestion_test" --gtest_brief=1
    RDMADL_CHECK=1 "$BUILD_DIR/tests/congestion_test" --gtest_brief=1
    for seed in ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}; do
      echo "=== congestion sweep: chaos seed $seed (CC + stragglers + RdmaCheck) ==="
      congestion_seed_run "$BUILD_DIR" "$seed"
    done
    "$BUILD_DIR/bench/bench_scale" --quick --check=1 --congestion --tail >/dev/null 2>&1
    SAN_DIR="${BUILD_DIR:-build}-sanitize"
    cmake -B "$SAN_DIR" -S . -DRDMADL_SANITIZE=address
    cmake --build "$SAN_DIR" -j "$JOBS" --target congestion_test
    "$SAN_DIR/tests/congestion_test" --gtest_brief=1
    echo "congestion sweep passed for seeds: ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}"
    ;;
  collectives)
    # Collective conformance sweep (ISSUE 7). The equivalence matrix runs
    # plain, then with the protocol checker installed in every test; the
    # multi-level chaos (HierarchicalChaosTest) and elastic leader
    # re-election tests sweep the fault seeds; finally the conformance
    # binary runs under ASan+UBSan — the matrix touches every slot/flag
    # layout the hierarchical and in-network schedules compute.
    plain_build
    "$BUILD_DIR/tests/collective_conformance_test" --gtest_brief=1
    RDMADL_CHECK=1 "$BUILD_DIR/tests/collective_conformance_test" --gtest_brief=1
    for seed in ${CHAOS_SEEDS:-1 2 3 4 5 6 7 8 9 10}; do
      echo "=== collective chaos sweep: RDMADL_FAULT_SEED=$seed ==="
      RDMADL_FAULT_SEED="$seed" RDMADL_CHECK=1 "$BUILD_DIR/tests/fault_test" \
        --gtest_brief=1 --gtest_filter='HierarchicalChaosTest.*'
      RDMADL_FAULT_SEED="$seed" RDMADL_CHECK=1 "$BUILD_DIR/tests/elastic_test" \
        --gtest_brief=1 --gtest_filter='*Hierarchical*'
    done
    SAN_DIR="${BUILD_DIR:-build}-sanitize"
    cmake -B "$SAN_DIR" -S . -DRDMADL_SANITIZE=address
    cmake --build "$SAN_DIR" -j "$JOBS" --target collective_conformance_test
    "$SAN_DIR/tests/collective_conformance_test" --gtest_brief=1
    echo "collective conformance sweep passed"
    ;;
  explore)
    # Schedule-space exploration sweep (ISSUE 9). The explorer's own suite
    # runs first — tie permutations, timing perturbations, POR pruning
    # invariants, the stall detector, the ddmin minimizer, and the four
    # seeded protocol mutations the explorer must catch — in canonical mode
    # and then with RDMADL_EXPLORE=16 so every ExploreForTest body actually
    # enumerates schedules. The Explore* harness bodies embedded in the
    # fault, conformance and congestion suites run under the same bound:
    # retry cursors, flat-ring all-reduce and DCQCN incast must stay clean
    # under every explored ordering. Finally the bench_explore report runs
    # twice with stdout diffed.
    plain_build
    "$BUILD_DIR/tests/explore_test" --gtest_brief=1
    RDMADL_EXPLORE=16 "$BUILD_DIR/tests/explore_test" --gtest_brief=1
    for suite in fault_test collective_conformance_test congestion_test; do
      echo "=== explore harness: $suite (RDMADL_EXPLORE=16) ==="
      RDMADL_EXPLORE=16 "$BUILD_DIR/tests/$suite" --gtest_brief=1 \
        --gtest_filter='Explore*'
    done
    explore_smoke "$BUILD_DIR"
    echo "exploration sweep passed (explorer suite, harness bodies, bench report)"
    ;;
esac
