#!/usr/bin/env bash
# Runs the transfer benchmark sweeps and emits BENCH_5.json at the repo root:
# the Figure 8 mechanism table plus the transfer-engine sweeps (QP lane
# striping, small-tensor coalescing, MR registration cache), each row with
# virtual-time latency/throughput, and a trailing meta row with the run's
# wall-clock. Virtual-time results go to stdout; wall-clock only to stderr
# and the JSON, so stdout stays deterministic.
#
# Also runs the cluster-scale sweep (bench_scale: hosts x model x topology up
# to 1000 simulated hosts) and emits BENCH_6.json with per-point virtual
# time, wall-clock events/sec and QP-pool footprint.
#
# Finally runs the collective-algorithm series (bench_scale --collectives:
# flat ring vs hierarchical vs kAuto vs in-network on the oversubscribed
# rack fabric) and emits BENCH_7.json; the binary itself asserts that the
# hierarchical schedule beats the ring at 256+ hosts and that kAuto matches
# it exactly.
#
# The incast/tail-latency bench (bench_incast: N-to-1 storms with bounded
# queues, drop vs PFC-pause vs DCQCN, per-message p50/p99/p999 from the
# latency histograms) emits BENCH_8.json; the full run self-enforces the
# collapse (p999 >= 5x p50 CC-off at 256 workers) and the DCQCN recovery
# (>= 2x better p999) acceptance gates.
#
# Usage:
#   scripts/bench.sh            # full sweeps -> BENCH_5/6/7/8.json
#   scripts/bench.sh --quick    # reduced size set (CI smoke config)
#
# Environment:
#   BUILD_DIR   override the build directory (default: build)
#   BENCH_OUT   override the transfer-sweep output (default: BENCH_5.json)
#   BENCH6_OUT  override the cluster-scale output (default: BENCH_6.json)
#   BENCH7_OUT  override the collective-series output (default: BENCH_7.json)
#   BENCH8_OUT  override the incast/tail output (default: BENCH_8.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH_OUT="${BENCH_OUT:-BENCH_5.json}"
BENCH6_OUT="${BENCH6_OUT:-BENCH_6.json}"
BENCH7_OUT="${BENCH7_OUT:-BENCH_7.json}"
BENCH8_OUT="${BENCH8_OUT:-BENCH_8.json}"
JOBS="${JOBS:-$(nproc)}"

QUICK=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=(--quick) ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD_DIR" -S . -DRDMADL_SANITIZE=OFF >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_fig8_micro --target bench_scale --target bench_incast >/dev/null

"$BUILD_DIR/bench/bench_fig8_micro" --sweep "${QUICK[@]}" --json="$BENCH_OUT"
echo "wrote $BENCH_OUT" >&2

"$BUILD_DIR/bench/bench_scale" "${QUICK[@]}" --json="$BENCH6_OUT"

"$BUILD_DIR/bench/bench_scale" --collectives "${QUICK[@]}" --json="$BENCH7_OUT"

"$BUILD_DIR/bench/bench_incast" "${QUICK[@]}" --json="$BENCH8_OUT"
echo "wrote $BENCH8_OUT" >&2
