#!/usr/bin/env bash
# Runs the transfer benchmark sweeps and emits BENCH_5.json at the repo root:
# the Figure 8 mechanism table plus the transfer-engine sweeps (QP lane
# striping, small-tensor coalescing, MR registration cache), each row with
# virtual-time latency/throughput, and a trailing meta row with the run's
# wall-clock. Virtual-time results go to stdout; wall-clock only to stderr
# and the JSON, so stdout stays deterministic.
#
# Usage:
#   scripts/bench.sh            # full sweep -> BENCH_5.json
#   scripts/bench.sh --quick    # reduced size set (CI smoke config)
#
# Environment:
#   BUILD_DIR  override the build directory (default: build)
#   BENCH_OUT  override the output path (default: BENCH_5.json)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BENCH_OUT="${BENCH_OUT:-BENCH_5.json}"
JOBS="${JOBS:-$(nproc)}"

QUICK=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=(--quick) ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD_DIR" -S . -DRDMADL_SANITIZE=OFF >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_fig8_micro >/dev/null

"$BUILD_DIR/bench/bench_fig8_micro" --sweep "${QUICK[@]}" --json="$BENCH_OUT"
echo "wrote $BENCH_OUT" >&2
